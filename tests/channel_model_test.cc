// Environmental-noise tests: ChannelModel unit behavior (loss, duplication,
// jitter, seeding, per-link overrides), composed fault modifiers
// (intermittent × targeting on one entry), and the localizer's loss
// tolerance — confirmation retries absorbing channel loss, and adaptive
// timeouts interacting with detour_extra_latency_s.
#include <gtest/gtest.h>

#include <memory>

#include "controller/controller.h"
#include "core/analysis_snapshot.h"
#include "core/localizer.h"
#include "core/rule_graph.h"
#include "core/scenario.h"
#include "dataplane/channel_model.h"
#include "dataplane/network.h"
#include "flow/synthesizer.h"
#include "sim/event_loop.h"
#include "topo/generator.h"

namespace sdnprobe {
namespace {

hsa::TernaryString ts(const char* s) {
  return *hsa::TernaryString::parse(s);
}

TEST(ChannelModel, DefaultConfigIsNoiseless) {
  dataplane::ChannelModel cm;
  EXPECT_TRUE(cm.noiseless());
  // Callers bypass a noiseless model, but even direct use must pass
  // everything through untouched.
  const auto d = cm.on_link(0, 1);
  EXPECT_EQ(d.copies, 1);
  EXPECT_EQ(d.extra_delay_s[0], 0.0);
}

TEST(ChannelModel, CertainLossDropsEveryTransmission) {
  dataplane::ChannelModelConfig cfg;
  cfg.link_loss = 1.0;
  dataplane::ChannelModel cm(cfg);
  EXPECT_FALSE(cm.noiseless());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(cm.on_link(0, 1).copies, 0);
  EXPECT_EQ(cm.counters().link_transmissions, 32u);
  EXPECT_EQ(cm.counters().link_drops, 32u);
}

TEST(ChannelModel, CertainDuplicationDeliversTwoCopies) {
  dataplane::ChannelModelConfig cfg;
  cfg.control_dup = 1.0;
  dataplane::ChannelModel cm(cfg);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(cm.on_control().copies, 2);
  EXPECT_EQ(cm.counters().control_dups, 32u);
  EXPECT_EQ(cm.counters().control_drops, 0u);
}

TEST(ChannelModel, JitterStaysWithinBound) {
  dataplane::ChannelModelConfig cfg;
  cfg.link_jitter_s = 5e-3;
  cfg.link_dup = 1.0;  // exercise both copies' draws
  dataplane::ChannelModel cm(cfg);
  for (int i = 0; i < 256; ++i) {
    const auto d = cm.on_link(1, 2);
    ASSERT_EQ(d.copies, 2);
    for (int c = 0; c < d.copies; ++c) {
      EXPECT_GE(d.extra_delay_s[c], 0.0);
      EXPECT_LT(d.extra_delay_s[c], 5e-3);
    }
  }
}

TEST(ChannelModel, SameSeedReplaysTheSameNoise) {
  dataplane::ChannelModelConfig cfg;
  cfg.link_loss = 0.3;
  cfg.link_dup = 0.2;
  cfg.link_jitter_s = 2e-3;
  cfg.seed = 99;
  dataplane::ChannelModel a(cfg);
  dataplane::ChannelModel b(cfg);
  for (int i = 0; i < 512; ++i) {
    const auto da = a.on_link(0, 1);
    const auto db = b.on_link(0, 1);
    ASSERT_EQ(da.copies, db.copies);
    for (int c = 0; c < da.copies; ++c) {
      ASSERT_EQ(da.extra_delay_s[c], db.extra_delay_s[c]);
    }
  }
  EXPECT_EQ(a.counters().link_drops, b.counters().link_drops);
  EXPECT_EQ(a.counters().link_dups, b.counters().link_dups);
}

TEST(ChannelModel, PerLinkOverrideIsUnorderedAndLiftsNoiseless) {
  dataplane::ChannelModel cm;
  ASSERT_TRUE(cm.noiseless());
  cm.set_link_loss(3, 1, 1.0);  // one flaky cable
  EXPECT_FALSE(cm.noiseless());
  EXPECT_EQ(cm.on_link(1, 3).copies, 0);  // either direction
  EXPECT_EQ(cm.on_link(3, 1).copies, 0);
  EXPECT_EQ(cm.on_link(0, 1).copies, 1);  // other links untouched
}

// --- Network-level noise -------------------------------------------------

// A 3-switch line: 0 -- 1 -- 2, one forwarding rule per switch for the
// 001xxxxx flow, delivered to the host port at switch 2 (and, when
// `second_flow`, a 010xxxxx flow entering at switch 1).
flow::RuleSet line_rules(bool second_flow = false) {
  topo::Graph g(3);
  g.add_edge(0, 1, 1e-3);
  g.add_edge(1, 2, 1e-3);
  flow::RuleSet rs(g, 8);
  for (flow::SwitchId s = 0; s < 3; ++s) {
    flow::FlowEntry e;
    e.switch_id = s;
    e.priority = 10;
    e.match = ts("001xxxxx");
    e.action = s < 2 ? flow::Action::output(*rs.ports().port_to(s, s + 1))
                     : flow::Action::output(rs.ports().host_port(2));
    rs.add_entry(e);
  }
  if (second_flow) {
    for (flow::SwitchId s = 1; s < 3; ++s) {
      flow::FlowEntry e;
      e.switch_id = s;
      e.priority = 10;
      e.match = ts("010xxxxx");
      e.action = s < 2 ? flow::Action::output(*rs.ports().port_to(s, s + 1))
                       : flow::Action::output(rs.ports().host_port(2));
      rs.add_entry(e);
    }
  }
  return rs;
}

TEST(Network, CertainLinkLossKillsForwarding) {
  const flow::RuleSet rs = line_rules();
  sim::EventLoop loop;
  dataplane::NetworkConfig nc;
  nc.channel.link_loss = 1.0;
  dataplane::Network net(rs, loop, nc);
  int delivered = 0;
  net.set_host_delivery_handler(
      [&](flow::SwitchId, const dataplane::Packet&, sim::SimTime) {
        ++delivered;
      });
  dataplane::Packet pkt;
  pkt.header = ts("00110101");
  net.packet_out(0, pkt);
  loop.run();
  // The PacketOut (control channel, loss 0) lands at switch 0, but the
  // first link hop is lost; nothing reaches the host.
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.channel().counters().link_drops, 1u);
}

TEST(Network, DuplicationDeliversTheSamePacketTwice) {
  const flow::RuleSet rs = line_rules();
  sim::EventLoop loop;
  dataplane::NetworkConfig nc;
  nc.channel.control_dup = 1.0;  // every PacketOut transits twice
  dataplane::Network net(rs, loop, nc);
  int delivered = 0;
  net.set_host_delivery_handler(
      [&](flow::SwitchId, const dataplane::Packet&, sim::SimTime) {
        ++delivered;
      });
  dataplane::Packet pkt;
  pkt.header = ts("00110101");
  net.packet_out(0, pkt);
  loop.run();
  EXPECT_EQ(delivered, 2);
}

// --- Composed fault modifiers (intermittent × targeting on one entry) ----

TEST(Network, IntermittentTargetingFaultNeedsBothConditions) {
  const flow::RuleSet rs = line_rules();
  sim::EventLoop loop;
  dataplane::Network net(rs, loop);
  // Drop only within the 0011xx11 victim cube, and only during the active
  // half of each 1-second period.
  const auto f = dataplane::FaultSpec::Drop()
                     .intermittent(1.0, 0.5, 0.0)
                     .targeting(ts("0011xx11"));
  net.faults().add_fault(0, f);
  int delivered = 0;
  net.set_host_delivery_handler(
      [&](flow::SwitchId, const dataplane::Packet&, sim::SimTime) {
        ++delivered;
      });
  dataplane::Packet victim;
  victim.header = ts("00110011");
  dataplane::Packet bystander;
  bystander.header = ts("00110000");
  // Active window + in-cube: dropped.
  loop.schedule_at(0.2, [&] { net.packet_out(0, victim); });
  // Active window + out-of-cube: passes.
  loop.schedule_at(0.2, [&] { net.packet_out(0, bystander); });
  // Inactive window + in-cube: passes.
  loop.schedule_at(0.7, [&] { net.packet_out(0, victim); });
  loop.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.counters().faults_applied, 1u);
}

// --- Localizer loss tolerance --------------------------------------------

struct Fixture {
  flow::RuleSet rules;
  std::unique_ptr<core::RuleGraph> graph;
  std::unique_ptr<core::AnalysisSnapshot> snap;
  sim::EventLoop loop;
  std::unique_ptr<dataplane::Network> net;
  std::unique_ptr<controller::Controller> ctrl;

  explicit Fixture(const flow::RuleSet& rs,
                   dataplane::NetworkConfig nc = {})
      : rules(rs) {
    graph = std::make_unique<core::RuleGraph>(rules);
    snap = std::make_unique<core::AnalysisSnapshot>(*graph);
    net = std::make_unique<dataplane::Network>(rules, loop, nc);
    ctrl = std::make_unique<controller::Controller>(rules, *net);
  }
};

flow::RuleSet synthesized_rules() {
  topo::GeneratorConfig tc;
  tc.node_count = 12;
  tc.link_count = 20;
  tc.seed = 5;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 700;
  sc.seed = 6;
  return flow::synthesize_ruleset(g, sc);
}

TEST(LossTolerance, RetriesDisabledChargeLossAsSuspicion) {
  // A clean network (no rule faults) over a lossy channel: without
  // confirmation retries, random probe loss reads as path failures, so the
  // run never quiesces early and keeps accumulating suspicion.
  dataplane::NetworkConfig nc;
  nc.channel.link_loss = 0.10;
  nc.channel.control_loss = 0.05;
  Fixture fx(synthesized_rules(), nc);
  core::LocalizerConfig lc;
  lc.max_rounds = 8;
  lc.charge_generation_time = false;
  const auto rep =
      core::FaultLocalizer(*fx.snap, *fx.ctrl, fx.loop, lc).run();
  std::size_t failures = 0;
  for (const auto& rec : rep.round_log) failures += rec.failures;
  EXPECT_GT(failures, 0u) << "10% loss must produce spurious path failures";
  EXPECT_EQ(rep.retries_sent, 0u);
  EXPECT_EQ(rep.rounds, lc.max_rounds) << "loss keeps the run from quiescing";
}

TEST(LossTolerance, RetriesAbsorbChannelLossWithoutFlags) {
  // Same lossy channel, retries on: every missing probe is confirmed as
  // channel loss (it eventually returns on a re-send), no switch is blamed,
  // and the run quiesces.
  dataplane::NetworkConfig nc;
  nc.channel.link_loss = 0.10;
  nc.channel.control_loss = 0.05;
  Fixture fx(synthesized_rules(), nc);
  core::LocalizerConfig lc;
  lc.max_rounds = 32;
  lc.confirm_retries = 4;
  lc.adaptive_timeout = true;
  lc.charge_generation_time = false;
  const auto rep =
      core::FaultLocalizer(*fx.snap, *fx.ctrl, fx.loop, lc).run();
  EXPECT_TRUE(rep.flagged_switches.empty())
      << "channel loss must not implicate any switch";
  EXPECT_GT(rep.retries_sent, 0u);
  EXPECT_GT(rep.retry_recoveries, 0u);
}

TEST(LossTolerance, RetriesStillDetectRealFaultsUnderLoss) {
  // Loss tolerance must not turn into fault blindness: a persistent drop
  // fault fails every retry too, so it is still localized exactly.
  dataplane::NetworkConfig nc;
  nc.channel.link_loss = 0.02;
  Fixture fx(synthesized_rules(), nc);
  util::Rng rng(13);
  const auto ids = core::choose_faulty_entries(*fx.graph, 1, rng);
  fx.net->faults().add_fault(ids[0], dataplane::FaultSpec::Drop());
  core::LocalizerConfig lc;
  lc.max_rounds = 48;
  lc.confirm_retries = 3;
  lc.adaptive_timeout = true;
  lc.charge_generation_time = false;
  const auto rep =
      core::FaultLocalizer(*fx.snap, *fx.ctrl, fx.loop, lc).run();
  ASSERT_EQ(rep.flagged_switches.size(), 1u);
  EXPECT_EQ(rep.flagged_switches[0], fx.rules.entry(ids[0]).switch_id);
}

TEST(LossTolerance, AdaptiveTimeoutToleratesDetourLatency) {
  // A colluding detour adds detour_extra_latency_s. With a tight fixed
  // grace the late (but correct) return is missed every round and the
  // colluder gets flagged; with retries + adaptive timeouts the late return
  // is observed, restoring the deterministic variant's detour blind spot
  // (Table I) — the probe *did* come back intact.
  const flow::RuleSet rs = line_rules(/*second_flow=*/true);
  const auto detour = dataplane::FaultSpec::Detour(/*partner=*/2,
                                                   /*extra_latency_s=*/5e-3);
  for (const bool tolerant : {false, true}) {
    Fixture fx(rs);
    fx.net->faults().add_fault(0, detour);
    core::LocalizerConfig lc;
    // Covers the normal ~4.2 ms RTT but not the ~7 ms detoured one.
    lc.round_grace_s = 6e-3;
    lc.max_rounds = 64;
    lc.charge_generation_time = false;
    if (tolerant) {
      lc.confirm_retries = 2;
      lc.adaptive_timeout = true;
    }
    const auto rep =
        core::FaultLocalizer(*fx.snap, *fx.ctrl, fx.loop, lc).run();
    if (tolerant) {
      EXPECT_TRUE(rep.flagged_switches.empty())
          << "adaptive timeouts must absorb the detour's extra latency";
    } else {
      ASSERT_EQ(rep.flagged_switches.size(), 1u)
          << "tight fixed grace must misread the late return as a failure";
      EXPECT_EQ(rep.flagged_switches[0], 0);
    }
  }
}

}  // namespace
}  // namespace sdnprobe
