// Tests for probe synthesis: header legality and uniqueness, expected
// return headers under set-field rewrites, and the traffic-profile sampler.
#include <gtest/gtest.h>

#include <set>

#include "core/analysis_snapshot.h"
#include "core/mlpc.h"
#include "core/probe_engine.h"
#include "core/rule_graph.h"
#include "core/traffic_profile.h"
#include "flow/synthesizer.h"
#include "topo/generator.h"

namespace sdnprobe::core {
namespace {

hsa::TernaryString ts(const char* s) {
  return *hsa::TernaryString::parse(s);
}

flow::RuleSet small_ruleset() {
  topo::GeneratorConfig tc;
  tc.node_count = 10;
  tc.link_count = 16;
  tc.seed = 3;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 600;
  sc.set_field_fraction = 0.2;  // plenty of rewrites to exercise transforms
  sc.seed = 4;
  return flow::synthesize_ruleset(g, sc);
}

TEST(ProbeEngine, HeadersAreUniqueAndLegal) {
  const flow::RuleSet rs = small_ruleset();
  RuleGraph graph(rs);
  AnalysisSnapshot snap(graph);
  const Cover cover = MlpcSolver().solve(snap);
  ProbeEngine engine(snap);
  util::Rng rng(5);
  const auto probes = engine.make_probes(cover, rng);
  EXPECT_EQ(probes.size(), cover.path_count());
  std::set<std::string> headers;
  for (const auto& p : probes) {
    EXPECT_TRUE(p.header.is_concrete());
    // The header lies in the path's injectable space (matches every tested
    // entry along the way).
    EXPECT_TRUE(graph.path_input_space(p.path).contains(p.header))
        << "illegal probe header";
    EXPECT_TRUE(headers.insert(p.header.to_string()).second)
        << "duplicate probe header violates §VI uniqueness";
  }
}

TEST(ProbeEngine, ExpectedReturnAppliesUpstreamSetFields) {
  // Two-switch chain where the first rule rewrites a host bit: the terminal
  // must expect the rewritten header.
  topo::Graph g(2);
  g.add_edge(0, 1);
  flow::RuleSet rs(g, 8);
  flow::FlowEntry first;
  first.switch_id = 0;
  first.priority = 10;
  first.match = ts("001xxxxx");
  first.set_field = ts("xxxxxxx1");
  first.action = flow::Action::output(*rs.ports().port_to(0, 1));
  rs.add_entry(first);
  flow::FlowEntry second;
  second.switch_id = 1;
  second.priority = 10;
  second.match = ts("001xxxxx");
  second.action = flow::Action::output(rs.ports().host_port(1));
  rs.add_entry(second);

  RuleGraph graph(rs);
  AnalysisSnapshot snap(graph);
  ProbeEngine engine(snap);
  util::Rng rng(1);
  const auto probe =
      engine.make_probe({graph.vertex_for(0), graph.vertex_for(1)}, rng);
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(probe->expected_return == probe->header.transform(ts("xxxxxxx1")));
  EXPECT_EQ(probe->inject_switch, 0);
  EXPECT_EQ(probe->terminal_entry, 1);
}

TEST(ProbeEngine, IllegalPathYieldsNoProbe) {
  const flow::RuleSet rs = small_ruleset();
  RuleGraph graph(rs);
  AnalysisSnapshot snap(graph);
  ProbeEngine engine(snap);
  util::Rng rng(2);
  // Two unrelated vertices rarely form a legal path; find a genuinely
  // illegal pair (no edge and disjoint spaces).
  for (VertexId a = 0; a < graph.vertex_count(); ++a) {
    for (VertexId b = 0; b < graph.vertex_count(); ++b) {
      if (a == b) continue;
      if (!graph.is_legal_path({a, b})) {
        EXPECT_FALSE(engine.make_probe({a, b}, rng).has_value());
        return;
      }
    }
  }
  FAIL() << "no illegal pair found (unexpected for this workload)";
}

TEST(ProbeEngine, ResetAllowsHeaderReuse) {
  topo::Graph g(2);
  g.add_edge(0, 1);
  flow::RuleSet rs(g, 8);
  flow::FlowEntry e;
  e.switch_id = 0;
  e.priority = 10;
  e.match = ts("0010101x");  // tiny space: 2 headers
  e.action = flow::Action::output(*rs.ports().port_to(0, 1));
  rs.add_entry(e);
  RuleGraph graph(rs);
  AnalysisSnapshot snap(graph);
  ProbeEngine engine(snap);
  util::Rng rng(1);
  ASSERT_TRUE(engine.make_probe({0}, rng).has_value());
  ASSERT_TRUE(engine.make_probe({0}, rng).has_value());
  EXPECT_FALSE(engine.make_probe({0}, rng).has_value())
      << "2-header space must exhaust after two unique probes";
  engine.reset_uniqueness();
  EXPECT_TRUE(engine.make_probe({0}, rng).has_value());
}

TEST(TrafficProfileTest, SampleBiasesTowardPopularCube) {
  TrafficProfile profile;
  const auto popular = ts("xxxx1111");
  profile.add_flow(popular, 10.0);
  util::Rng rng(9);
  const hsa::HeaderSpace space = hsa::HeaderSpace::full(8);
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    const auto h = profile.sample(space, rng);
    ASSERT_TRUE(h.has_value());
    if (popular.covers(*h)) ++hits;
  }
  EXPECT_GT(hits, 90) << "samples should come from the observed flow";
}

TEST(TrafficProfileTest, FallsBackWhenNoOverlap) {
  TrafficProfile profile;
  profile.add_flow(ts("1111xxxx"), 1.0);
  util::Rng rng(9);
  // The requested space is disjoint from every observed cube.
  const hsa::HeaderSpace space(ts("0000xxxx"));
  const auto h = profile.sample(space, rng);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(space.contains(*h));
}

TEST(TrafficProfileTest, PeriodSnapshotIsOneFlow) {
  TrafficProfile profile;
  profile.add_flow(ts("1111xxxx"), 1.0);
  profile.add_flow(ts("0000xxxx"), 1.0);
  util::Rng rng(4);
  const TrafficProfile snap = profile.period_snapshot(rng);
  EXPECT_EQ(snap.flow_count(), 1u);
}

}  // namespace
}  // namespace sdnprobe::core
