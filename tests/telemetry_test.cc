// Tests for the telemetry subsystem: JSON writer round-trips, registry
// instruments (enabled/disabled semantics, concurrency from a ThreadPool),
// dual-clock trace spans and their nesting, exporter schema stability, and
// the bench run-artifact schema validator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "dataplane/network.h"
#include "flow/synthesizer.h"
#include "monitor/monitor.h"
#include "telemetry/artifact.h"
#include "telemetry/json_writer.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "topo/generator.h"
#include "util/thread_pool.h"

namespace sdnprobe::telemetry {
namespace {

// --- JSON writer ---

TEST(JsonWriter, ScalarsSerialize) {
  EXPECT_EQ(JsonValue().to_string(), "null");
  EXPECT_EQ(JsonValue(true).to_string(), "true");
  EXPECT_EQ(JsonValue(false).to_string(), "false");
  EXPECT_EQ(JsonValue(42).to_string(), "42");
  EXPECT_EQ(JsonValue(-7).to_string(), "-7");
  EXPECT_EQ(JsonValue(1.5).to_string(), "1.5");
  EXPECT_EQ(JsonValue("hi").to_string(), "\"hi\"");
}

TEST(JsonWriter, EscapesStringsPerRfc8259) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

TEST(JsonWriter, NumbersRoundTripAndNonFiniteAreSanitized) {
  for (const double v : {0.0, 1.0, -1.0, 0.1, 1e-9, 1e300, 3.141592653589793,
                         12345.6789, 2.2250738585072014e-308}) {
    const std::string s = json_number(v);
    EXPECT_DOUBLE_EQ(std::strtod(s.c_str(), nullptr), v) << "formatted " << s;
  }
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(JsonWriter, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj["zulu"] = 1;
  obj["alpha"] = 2;
  obj["mike"] = 3;
  EXPECT_EQ(obj.to_string(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
  // operator[] on an existing key updates in place, keeping its position.
  obj["alpha"] = 20;
  EXPECT_EQ(obj.to_string(), "{\"zulu\":1,\"alpha\":20,\"mike\":3}");
  EXPECT_EQ(obj.size(), 3u);
  ASSERT_NE(obj.find("mike"), nullptr);
  EXPECT_EQ(obj.find("mike")->to_string(), "3");
  EXPECT_EQ(obj.find("absent"), nullptr);
}

TEST(JsonWriter, NestedStructuresAndPrettyPrinting) {
  JsonValue root = JsonValue::object();
  root["list"] = JsonValue::array();
  root["list"].append(1);
  root["list"].append("two");
  root["nested"] = JsonValue::object();
  root["nested"]["k"] = true;
  EXPECT_EQ(root.to_string(),
            "{\"list\":[1,\"two\"],\"nested\":{\"k\":true}}");
  const std::string pretty = root.to_pretty_string();
  EXPECT_NE(pretty.find("  \"list\": [\n"), std::string::npos);
  EXPECT_EQ(pretty.back(), '\n');
  // Serialization is deterministic: same document, same bytes.
  EXPECT_EQ(root.to_string(), root.to_string());
  EXPECT_EQ(root.to_pretty_string(), pretty);
}

// --- Registry instruments ---

TEST(MetricsRegistry, DisabledInstrumentsRecordNothing) {
  MetricsRegistry reg(/*enabled=*/false);
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(3.0);
  h.record(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // Spans against a disabled registry do not record or change depth.
  {
    TraceSpan span(reg, "quiet");
    EXPECT_FALSE(span.recording());
    EXPECT_EQ(current_span_depth(), 0);
  }
  EXPECT_TRUE(reg.spans().empty());
}

TEST(MetricsRegistry, EnabledInstrumentsRecord) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter& c = reg.counter("events");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  // Lookup by the same name returns the same instrument.
  EXPECT_EQ(&reg.counter("events"), &c);

  Gauge& g = reg.gauge("depth");
  g.set(4.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 4.0);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);

  Histogram& h = reg.histogram("lat", {1.0, 10.0});
  for (const double v : {0.5, 2.0, 5.0, 50.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);  // <=1, <=10, overflow
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsInstrumentIdentity) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter& c = reg.counter("n");
  Histogram& h = reg.histogram("d");
  c.add(3);
  h.record(1.5);
  { TraceSpan span(reg, "s"); }
  ASSERT_EQ(reg.spans().size(), 1u);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(reg.spans().empty());
  // The old references still work after reset.
  c.add();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&reg.counter("n"), &c);
}

TEST(MetricsRegistry, CountersAreExactUnderThreadPoolHammering) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter& c = reg.counter("hammered");
  Histogram& h = reg.histogram("hammered_h");
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  {
    util::ThreadPool pool(4);
    util::parallel_for(&pool, kTasks, [&](std::size_t i) {
      for (int k = 0; k < kAddsPerTask; ++k) {
        c.add();
        h.record(static_cast<double>(i));
      }
    });
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(h.count(), static_cast<std::size_t>(kTasks) * kAddsPerTask);
}

TEST(MetricsRegistry, ConcurrentInstrumentResolutionIsSafe) {
  MetricsRegistry reg(/*enabled=*/true);
  constexpr int kTasks = 32;
  {
    util::ThreadPool pool(4);
    util::parallel_for(&pool, kTasks, [&](std::size_t i) {
      // Half the tasks resolve the same name, half resolve distinct ones.
      reg.counter("shared").add();
      reg.counter("task." + std::to_string(i % 8)).add();
      reg.histogram("hist." + std::to_string(i % 4)).record(1.0);
    });
  }
  EXPECT_EQ(reg.counter("shared").value(), static_cast<std::uint64_t>(kTasks));
}

TEST(MetricsRegistry, SpanCapDropsExcessSpansAndCountsThem) {
  MetricsRegistry reg(/*enabled=*/true);
  for (std::size_t i = 0; i < MetricsRegistry::span_cap() + 10; ++i) {
    SpanRecord s;
    s.name = "x";
    reg.record_span(std::move(s));
  }
  EXPECT_EQ(reg.spans().size(), MetricsRegistry::span_cap());
  const std::string json = reg.to_json().to_string();
  EXPECT_NE(json.find("\"spans_dropped\":10"), std::string::npos);
}

// --- Trace spans ---

TEST(TraceSpan, RecordsWallTimeDepthAndAnnotations) {
  MetricsRegistry reg(/*enabled=*/true);
  EXPECT_EQ(current_span_depth(), 0);
  {
    TraceSpan outer(reg, "outer");
    EXPECT_TRUE(outer.recording());
    EXPECT_EQ(current_span_depth(), 1);
    {
      TraceSpan inner(reg, "inner");
      EXPECT_EQ(current_span_depth(), 2);
      inner.annotate("k", 7.0);
    }
    EXPECT_EQ(current_span_depth(), 1);
  }
  EXPECT_EQ(current_span_depth(), 0);

  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 2u);  // completion order: inner first
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "k");
  EXPECT_DOUBLE_EQ(spans[0].attrs[0].second, 7.0);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_GE(spans[1].wall_ms, 0.0);
  EXPECT_FALSE(spans[0].has_sim);
  // Each span also feeds a per-name duration histogram.
  EXPECT_EQ(reg.histogram("span.inner.wall_ms").count(), 1u);
}

TEST(TraceSpan, DualClockCapturesSimulatedInterval) {
  MetricsRegistry reg(/*enabled=*/true);
  double sim_now = 10.0;
  {
    TraceSpan span(reg, "round", [&sim_now] { return sim_now; });
    sim_now = 12.5;  // the guarded region advances simulated time
  }
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].has_sim);
  EXPECT_DOUBLE_EQ(spans[0].sim_start_s, 10.0);
  EXPECT_DOUBLE_EQ(spans[0].sim_end_s, 12.5);
}

// --- Exporters ---

TEST(Exporters, TextSkipsZeroInstrumentsAndShowsNonZero) {
  MetricsRegistry reg(/*enabled=*/true);
  reg.counter("silent");
  reg.counter("loud").add(3);
  const std::string text = reg.to_text();
  EXPECT_EQ(text.find("silent"), std::string::npos);
  EXPECT_NE(text.find("counter   loud = 3"), std::string::npos);
}

TEST(Exporters, JsonSchemaIsStableAndOrdered) {
  MetricsRegistry reg(/*enabled=*/true);
  reg.counter("b.two").add(2);
  reg.counter("a.one").add(1);
  reg.gauge("g").set(1.5);
  reg.histogram("h").record(0.5);
  { TraceSpan span(reg, "s", [] { return 1.0; }); }

  const JsonValue doc = reg.to_json();
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->to_string(), "\"sdnprobe.metrics.v1\"");
  for (const char* key :
       {"counters", "gauges", "histograms", "spans", "spans_dropped"}) {
    EXPECT_NE(doc.find(key), nullptr) << key;
  }
  const std::string s = doc.to_string();
  // Counters export in name order regardless of creation order.
  EXPECT_LT(s.find("a.one"), s.find("b.two"));
  // Histogram entries carry the full stat block.
  for (const char* key : {"\"count\"", "\"mean\"", "\"p50\"", "\"p90\"",
                          "\"p99\"", "\"bucket_bounds\"", "\"bucket_counts\""}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
  // Span with a sim clock exports the simulated interval.
  EXPECT_NE(s.find("\"sim_duration_s\""), std::string::npos);
  // Exporting twice yields byte-identical output (artifact diffability).
  EXPECT_EQ(reg.to_json().to_string(), s);
}

TEST(Exporters, WriteMetricsFileProducesParseableDocument) {
  MetricsRegistry reg(/*enabled=*/true);
  reg.counter("written").add(1);
  const std::string path = ::testing::TempDir() + "telemetry_export.json";
  ASSERT_TRUE(write_metrics_file(reg, path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"sdnprobe.metrics.v1\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"written\": 1"), std::string::npos);
  std::remove(path.c_str());
}

// --- Run artifacts ---

TEST(RunArtifact, BuildsSchemaValidDocument) {
  RunArtifact art("unit_test", "telemetry_test.cc", /*full_scale=*/false);
  art.set_param("switches", 8);
  auto& row = art.add_row();
  row["rules"] = 100;
  row["probes"] = 7;
  art.set_summary("headline", 1.25);
  EXPECT_EQ(validate_bench_artifact(art.json()), "");
  const std::string s = art.json().to_string();
  EXPECT_NE(s.find("\"schema\":\"sdnprobe.bench.v1\""), std::string::npos);
  EXPECT_NE(s.find("\"bench\":\"unit_test\""), std::string::npos);
}

TEST(RunArtifact, SummaryOnlyDocumentIsValid) {
  RunArtifact art("single_config", "ref", false);
  art.set_summary("value", 42);
  EXPECT_EQ(validate_bench_artifact(art.json()), "");
}

TEST(RunArtifact, ValidatorRejectsMalformedDocuments) {
  EXPECT_NE(validate_bench_artifact(JsonValue(3)), "");
  EXPECT_NE(validate_bench_artifact(JsonValue::object()), "");

  JsonValue wrong_schema = JsonValue::object();
  wrong_schema["schema"] = "sdnprobe.bench.v0";
  EXPECT_NE(validate_bench_artifact(wrong_schema), "");

  // An otherwise-valid doc with no data at all is rejected.
  RunArtifact empty("no_data", "ref", true);
  EXPECT_NE(validate_bench_artifact(empty.json()), "");

  // Missing rows array.
  JsonValue doc = JsonValue::object();
  doc["schema"] = "sdnprobe.bench.v1";
  doc["bench"] = "x";
  doc["reproduces"] = "y";
  doc["full"] = false;
  doc["params"] = JsonValue::object();
  doc["summary"] = JsonValue::object();
  EXPECT_NE(validate_bench_artifact(doc), "");
}

TEST(RunArtifact, WriteToEmitsBenchPrefixedFile) {
  RunArtifact art("write_test", "ref", false);
  art.set_summary("k", 1);
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  const std::string path = art.write_to(dir);
  ASSERT_EQ(path, dir + "/BENCH_write_test.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"sdnprobe.bench.v1\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunArtifact, AttachMetricsEmbedsRegistryExport) {
  MetricsRegistry reg(/*enabled=*/true);
  reg.counter("embedded").add(4);
  RunArtifact art("with_metrics", "ref", false);
  art.set_summary("k", 1);
  art.attach_metrics(reg);
  EXPECT_EQ(validate_bench_artifact(art.json()), "");
  const std::string s = art.json().to_string();
  EXPECT_NE(s.find("\"metrics\":{\"schema\":\"sdnprobe.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(s.find("\"embedded\":4"), std::string::npos);
}

// --- ThreadPool observer wiring (the global registry installs it) ---

TEST(PoolObserver, GlobalRegistryCountsPoolTasksWhenEnabled) {
  auto& reg = MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  Counter& tasks = reg.counter("threadpool.tasks_run");
  const std::uint64_t before = tasks.value();
  {
    util::ThreadPool pool(2);
    std::atomic<int> ran{0};
    util::parallel_for(&pool, 10, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 10);
  }
  EXPECT_GE(tasks.value(), before + 10);
  reg.set_enabled(was_enabled);
}

// --- Monitor health instruments (DESIGN.md §12) ---

TEST(MonitorTelemetry, UptimeGaugesTrackBothClocks) {
  auto& reg = MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);

  topo::GeneratorConfig tc;
  tc.node_count = 8;
  tc.link_count = 13;
  tc.seed = 3;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 300;
  sc.seed = 4;
  flow::RuleSet rules = flow::synthesize_ruleset(g, sc);
  sim::EventLoop loop;
  dataplane::Network net(rules, loop);
  controller::Controller ctrl(rules, net);
  monitor::Monitor mon(rules, ctrl, loop, {});

  // Advance the simulated clock, then run a round: the live-session gauges
  // must track both clocks independently (sim uptime from the event loop,
  // wall uptime from the host stopwatch).
  loop.schedule_in(2.5, [] {});
  loop.run();
  mon.run_round();
  EXPECT_GE(reg.gauge("monitor.uptime_sim_s").value(), 2.5);
  EXPECT_GT(reg.gauge("monitor.uptime_wall_s").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("monitor.epoch").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("monitor.coverage_fraction").value(), 1.0);
  EXPECT_EQ(reg.counter("monitor.rounds_run").value(), 1u);
  // The same numbers surface in status() for the JSON artifact path.
  const monitor::MonitorStatus st = mon.status();
  EXPECT_GE(st.uptime_sim_s, reg.gauge("monitor.uptime_sim_s").value());
  EXPECT_GE(st.uptime_wall_s, reg.gauge("monitor.uptime_wall_s").value());

  reg.set_enabled(was_enabled);
  reg.reset();
}

}  // namespace
}  // namespace sdnprobe::telemetry
