// Tests for the topology module: graph invariants, Dijkstra, Yen's
// K-shortest paths, and the ISP-like generator.
#include "topo/generator.h"
#include "topo/graph.h"

#include <gtest/gtest.h>

#include <set>

namespace sdnprobe::topo {
namespace {

Graph diamond() {
  // 0 - 1 - 3, 0 - 2 - 3, plus a slow direct 0 - 3.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.5);
  g.add_edge(2, 3, 1.5);
  g.add_edge(0, 3, 5.0);
  return g;
}

TEST(Graph, RejectsSelfLoopsAndParallelEdges) {
  Graph g(3);
  EXPECT_FALSE(g.add_edge(1, 1));
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // undirected duplicate
  EXPECT_FALSE(g.add_edge(0, 2, -1.0));
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(Graph, ShortestPathPicksCheapestRoute) {
  const Graph g = diamond();
  const Path p = g.shortest_path(0, 3);
  ASSERT_EQ(p.nodes.size(), 3u);
  EXPECT_EQ(p.nodes[1], 1);
  EXPECT_DOUBLE_EQ(p.cost, 2.0);
}

TEST(Graph, ShortestPathUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.shortest_path(0, 2).empty());
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, KShortestPathsOrderedAndLoopless) {
  const Graph g = diamond();
  const auto paths = g.k_shortest_paths(0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);  // only three loopless routes exist
  EXPECT_DOUBLE_EQ(paths[0].cost, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].cost, 3.0);
  EXPECT_DOUBLE_EQ(paths[2].cost, 5.0);
  for (const auto& p : paths) {
    const std::set<NodeId> uniq(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(uniq.size(), p.nodes.size()) << "loop in path";
    EXPECT_EQ(p.nodes.front(), 0);
    EXPECT_EQ(p.nodes.back(), 3);
    // Consecutive nodes must actually be adjacent.
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      EXPECT_TRUE(g.has_edge(p.nodes[i], p.nodes[i + 1]));
    }
  }
}

TEST(Graph, KShortestDistinct) {
  const Graph g = diamond();
  const auto paths = g.k_shortest_paths(0, 3, 3);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_FALSE(paths[i] == paths[j]);
    }
  }
}

// Generator property sweep: connectivity and exact link counts across
// seeds and sizes (incl. the Table II presets).
struct GenCase {
  int nodes;
  int links;
  std::uint64_t seed;
};

class GeneratorProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, ConnectedWithExactCounts) {
  const GenCase c = GetParam();
  GeneratorConfig cfg;
  cfg.node_count = c.nodes;
  cfg.link_count = c.links;
  cfg.seed = c.seed;
  const Graph g = make_rocketfuel_like(cfg);
  EXPECT_EQ(g.node_count(), c.nodes);
  EXPECT_EQ(g.edge_count(), c.links);
  EXPECT_TRUE(g.is_connected());
  for (const auto& e : g.edges()) {
    EXPECT_GT(e.latency_s, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, GeneratorProperty,
    ::testing::Values(GenCase{10, 15, 1}, GenCase{10, 15, 2},
                      GenCase{30, 54, 1}, GenCase{30, 54, 7},
                      GenCase{79, 147, 3}, GenCase{5, 10, 9},
                      GenCase{2, 1, 1}, GenCase{40, 60, 11}));

TEST(Generator, DeterministicPerSeed) {
  GeneratorConfig cfg;
  cfg.node_count = 20;
  cfg.link_count = 36;
  cfg.seed = 5;
  const Graph a = make_rocketfuel_like(cfg);
  const Graph b = make_rocketfuel_like(cfg);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (int i = 0; i < a.edge_count(); ++i) {
    EXPECT_EQ(a.edges()[static_cast<std::size_t>(i)].a,
              b.edges()[static_cast<std::size_t>(i)].a);
    EXPECT_EQ(a.edges()[static_cast<std::size_t>(i)].b,
              b.edges()[static_cast<std::size_t>(i)].b);
  }
}

TEST(Generator, TableTwoPresetsMatchPaper) {
  const auto& presets = table_two_presets();
  ASSERT_EQ(presets.size(), 5u);
  EXPECT_EQ(presets[0].switches, 10);
  EXPECT_EQ(presets[0].links, 15);
  EXPECT_EQ(presets[0].rules, 4764);
  EXPECT_EQ(presets[4].switches, 79);
  EXPECT_EQ(presets[4].links, 147);
  EXPECT_EQ(presets[4].rules, 358675);
}

}  // namespace
}  // namespace sdnprobe::topo
