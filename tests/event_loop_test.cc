// Tests for the discrete-event kernel: deadline semantics and clock
// advancement of run_until(), stable ordering of same-time events,
// clear() between repetitions, and re-entrant schedule_in() from inside a
// running callback — the pattern the data plane uses for every hop.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"

namespace sdnprobe::sim {
namespace {

TEST(EventLoop, StartsAtTimeZeroAndEmpty) {
  EventLoop loop;
  EXPECT_DOUBLE_EQ(loop.now(), 0.0);
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.run(), 0u);
}

TEST(EventLoop, RunExecutesInTimeOrderAndAdvancesClock) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(3.0, [&] { order.push_back(3); });
  loop.schedule_at(1.0, [&] { order.push_back(1); });
  loop.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 3.0);
}

TEST(EventLoop, RunUntilRespectsDeadlineAndLeavesLaterEventsQueued) {
  EventLoop loop;
  std::vector<double> fired;
  for (const double t : {0.5, 1.5, 2.5, 3.5}) {
    loop.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  EXPECT_EQ(loop.run_until(2.5), 3u);  // events at 0.5, 1.5, 2.5
  EXPECT_EQ(fired, (std::vector<double>{0.5, 1.5, 2.5}));
  EXPECT_EQ(loop.pending(), 1u);  // the 3.5 event survives
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_DOUBLE_EQ(loop.now(), 3.5);
}

TEST(EventLoop, RunUntilAdvancesClockToDeadlineWithNoEvents) {
  // The localizer idles between rounds by run_until(now + grace): the clock
  // must advance to the deadline even when nothing is scheduled.
  EventLoop loop;
  EXPECT_EQ(loop.run_until(5.0), 0u);
  EXPECT_DOUBLE_EQ(loop.now(), 5.0);
  // A deadline in the past must not rewind the clock.
  EXPECT_EQ(loop.run_until(1.0), 0u);
  EXPECT_DOUBLE_EQ(loop.now(), 5.0);
}

TEST(EventLoop, SameTimeEventsRunInSchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    loop.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  loop.run();
  std::vector<int> expected(16);
  for (int i = 0; i < 16; ++i) expected[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(order, expected);
}

TEST(EventLoop, ScheduleAtPastTimeIsClampedToNow) {
  EventLoop loop;
  loop.run_until(10.0);
  bool ran = false;
  loop.schedule_at(2.0, [&] { ran = true; });  // in the past
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(loop.now(), 10.0);  // clamped, not rewound
}

TEST(EventLoop, ClearDropsPendingEventsButKeepsClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1.0, [&] { ++fired; });
  loop.run();
  loop.schedule_at(2.0, [&] { ++fired; });
  loop.schedule_at(3.0, [&] { ++fired; });
  EXPECT_EQ(loop.pending(), 2u);
  loop.clear();
  EXPECT_TRUE(loop.empty());
  EXPECT_EQ(loop.run(), 0u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now(), 1.0);  // experiment repetitions keep the clock
  // The loop stays usable after clear().
  loop.schedule_in(0.5, [&] { ++fired; });
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(loop.now(), 1.5);
}

TEST(EventLoop, ReentrantScheduleInChainsRelativeToFiringTime) {
  // A callback scheduling the next hop relative to its own firing time is
  // how packets traverse the simulated network; delays must compound.
  EventLoop loop;
  std::vector<double> hop_times;
  std::function<void(int)> hop = [&](int remaining) {
    hop_times.push_back(loop.now());
    if (remaining > 0) {
      loop.schedule_in(0.25, [&hop, remaining] { hop(remaining - 1); });
    }
  };
  loop.schedule_at(1.0, [&hop] { hop(3); });
  EXPECT_EQ(loop.run(), 4u);
  ASSERT_EQ(hop_times.size(), 4u);
  EXPECT_DOUBLE_EQ(hop_times[0], 1.0);
  EXPECT_DOUBLE_EQ(hop_times[1], 1.25);
  EXPECT_DOUBLE_EQ(hop_times[2], 1.5);
  EXPECT_DOUBLE_EQ(hop_times[3], 1.75);
  EXPECT_DOUBLE_EQ(loop.now(), 1.75);
}

TEST(EventLoop, RunUntilWithReentrantSchedulingStopsAtDeadline) {
  // An infinite self-rescheduling chain (a heartbeat) must still respect
  // run_until's deadline instead of spinning forever.
  EventLoop loop;
  int beats = 0;
  std::function<void()> beat = [&] {
    ++beats;
    loop.schedule_in(1.0, beat);
  };
  loop.schedule_at(1.0, beat);
  loop.run_until(5.5);
  EXPECT_EQ(beats, 5);  // t = 1, 2, 3, 4, 5
  EXPECT_DOUBLE_EQ(loop.now(), 5.5);
  EXPECT_EQ(loop.pending(), 1u);  // the t=6 beat stays queued
}

}  // namespace
}  // namespace sdnprobe::sim
