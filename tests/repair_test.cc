// Tests for repair:: — the self-healing loop (DESIGN.md §15): corpus
// serialization, entry-granular diagnosis, the patch safety ladder
// (verify -> fence -> lint -> confirm -> rollback), inverse-churn
// bit-identity, and determinism across monitor thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/invariant.h"
#include "analysis/verifier.h"
#include "controller/controller.h"
#include "core/analysis_snapshot.h"
#include "core/rule_graph.h"
#include "core/scenario.h"
#include "dataplane/network.h"
#include "flow/synthesizer.h"
#include "monitor/monitor.h"
#include "repair/corpus.h"
#include "repair/diagnosis.h"
#include "repair/engine.h"
#include "topo/generator.h"
#include "util/rng.h"

namespace sdnprobe::repair {
namespace {

using monitor::ChurnOp;

struct Fixture {
  flow::RuleSet rules;
  sim::EventLoop loop;
  std::unique_ptr<dataplane::Network> net;
  std::unique_ptr<controller::Controller> ctrl;
  std::unique_ptr<monitor::Monitor> mon;
  flow::RuleSet spare;  // same-shape entries to install as churn

  explicit Fixture(std::uint64_t seed = 11, long entries = 500,
                   monitor::MonitorConfig config = {}) {
    topo::GeneratorConfig tc;
    tc.node_count = 12;
    tc.link_count = 20;
    tc.seed = seed;
    const topo::Graph g = topo::make_rocketfuel_like(tc);
    flow::SynthesizerConfig sc;
    sc.target_entry_count = entries;
    sc.seed = seed + 1;
    rules = flow::synthesize_ruleset(g, sc);
    flow::SynthesizerConfig spare_sc = sc;
    spare_sc.target_entry_count = entries / 4;
    spare_sc.seed = seed + 2;
    spare = flow::synthesize_ruleset(g, spare_sc);
    net = std::make_unique<dataplane::Network>(rules, loop);
    ctrl = std::make_unique<controller::Controller>(rules, *net);
    mon = std::make_unique<monitor::Monitor>(rules, *ctrl, loop, config);
  }

  flow::FlowEntry spare_entry(std::size_t i) {
    flow::FlowEntry e = spare.entry(static_cast<flow::EntryId>(i));
    e.id = -1;
    return e;
  }
};

core::FaultMix only_drop() {
  core::FaultMix m;
  m.misdirect = false;
  m.modify = false;
  return m;
}

core::FaultMix only_misdirect() {
  core::FaultMix m;
  m.drop = false;
  m.modify = false;
  return m;
}

core::FaultMix only_modify() {
  core::FaultMix m;
  m.drop = false;
  m.misdirect = false;
  return m;
}

// Injects one basic fault on a monitor-chosen entry after a clean round,
// then runs rounds until the monitor flags a switch.
flow::EntryId inject_and_flag(Fixture& fx, const core::FaultMix& mix,
                              std::uint64_t seed = 7) {
  fx.mon->run_round();
  EXPECT_TRUE(fx.mon->report().flagged_switches.empty());
  util::Rng rng(seed);
  const auto snap = fx.mon->snapshot();
  const auto ids = core::choose_faulty_entries(snap->graph(), 1, rng);
  fx.net->faults().add_fault(ids[0],
                             core::make_fault(snap->graph(), ids[0], mix, rng));
  for (int i = 0; i < 5 && fx.mon->report().flagged_switches.empty(); ++i) {
    fx.mon->run_round();
  }
  return ids[0];
}

// A patch attempt that reached the dataplane without surviving the
// dry-run verifier would break the engine's core safety promise.
void expect_no_unverified_install(const RepairOutcome& out) {
  for (const PatchAttempt& at : out.attempts) {
    EXPECT_TRUE(!at.installed || at.verified)
        << strategy_name(at.strategy) << " installed without verification";
  }
}

// A 4-switch chain 0-1-2-3 with one forwarding entry per switch and a
// whole-switch drop fault on switch 1 — a cut vertex, so no reroute
// exists, reinstalled copies inherit the switch fault, and every installed
// patch must fail its confirm and roll back (the corpus "unhealed" case).
Scenario chain_scenario() {
  Scenario s;
  s.note = "switch-level drop on a chain cut vertex; no alternate path";
  s.expect = "unhealed";
  s.header_width = 8;
  s.nodes = 4;
  s.edges = {{0, 1, 0.001}, {1, 2, 0.001}, {2, 3, 0.001}};
  const auto fwd = [](flow::SwitchId sw, flow::PortId out) {
    flow::FlowEntry e;
    e.switch_id = sw;
    e.table_id = 0;
    e.priority = 10;
    e.match = *hsa::TernaryString::parse("1xxxxxxx");
    e.set_field = hsa::TernaryString::wildcard(8);
    e.action = flow::Action::output(out);
    return e;
  };
  // Port i connects to the i-th sorted neighbor; the last port is the host
  // port (flow::PortMap convention).
  s.entries = {fwd(0, 0), fwd(1, 1), fwd(2, 1), fwd(3, 1)};
  ScenarioFault f;
  f.is_switch = true;
  f.switch_id = 1;
  f.spec.kind = dataplane::FaultKind::kDrop;
  s.faults.push_back(f);
  return s;
}

TEST(Corpus, SerializeParseRoundTrip) {
  Scenario s = chain_scenario();
  // Exercise every record type: add an entry-level intermittent targeting
  // misdirect alongside the switch fault.
  ScenarioFault f;
  f.is_switch = false;
  f.entry_index = 2;
  f.spec.kind = dataplane::FaultKind::kMisdirect;
  f.spec.misdirect_port = 0;
  f.spec.is_intermittent = true;
  f.spec.period_s = 2.0;
  f.spec.duty_cycle = 0.5;
  f.spec.phase_s = 0.25;
  f.spec.target = *hsa::TernaryString::parse("1xxxxxx0");
  s.faults.push_back(f);

  const std::string text = serialize_scenario(s);
  const auto parsed = parse_scenario(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->note, s.note);
  EXPECT_EQ(parsed->expect, s.expect);
  EXPECT_EQ(parsed->header_width, s.header_width);
  EXPECT_EQ(parsed->nodes, s.nodes);
  ASSERT_EQ(parsed->edges.size(), s.edges.size());
  ASSERT_EQ(parsed->entries.size(), s.entries.size());
  ASSERT_EQ(parsed->faults.size(), s.faults.size());
  EXPECT_TRUE(parsed->faults[0].is_switch);
  EXPECT_EQ(parsed->faults[0].switch_id, 1);
  EXPECT_FALSE(parsed->faults[1].is_switch);
  EXPECT_EQ(parsed->faults[1].entry_index, 2);
  EXPECT_TRUE(parsed->faults[1].spec.is_intermittent);
  EXPECT_EQ(parsed->faults[1].spec.target.to_string(), "1xxxxxx0");
  // Fixed point: serialize(parse(serialize(s))) == serialize(s).
  EXPECT_EQ(serialize_scenario(*parsed), text);
}

TEST(Corpus, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_scenario("").has_value());
  EXPECT_FALSE(parse_scenario("not.the.magic\nnodes 2\n").has_value());
  const std::string magic = "sdnprobe.scenario.v1\n";
  EXPECT_FALSE(parse_scenario(magic + "entry 0 0\n").has_value());
  EXPECT_FALSE(parse_scenario(magic + "bogus 1\n").has_value());
  EXPECT_FALSE(
      parse_scenario(magic + "fault entry 0 kind=flux\n").has_value());
  EXPECT_FALSE(
      parse_scenario(magic + "entry 0 0 10 1x zz output 0\n").has_value());
  // Comments and blank lines are fine.
  EXPECT_TRUE(parse_scenario(magic + "# a comment\n\nnodes 2\n").has_value());
}

TEST(Corpus, CaptureRebuildMatchesLiveFingerprint) {
  Fixture fx;
  util::Rng rng(3);
  const auto snap = fx.mon->snapshot();
  const auto ids = core::choose_faulty_entries(snap->graph(), 2, rng);
  core::FaultMix mix;
  for (const flow::EntryId id : ids) {
    fx.net->faults().add_fault(id,
                               core::make_fault(snap->graph(), id, mix, rng));
  }
  dataplane::FaultSpec sw_drop;
  sw_drop.kind = dataplane::FaultKind::kDrop;
  fx.net->faults().add_switch_fault(3, sw_drop);

  const Scenario s =
      capture_scenario(fx.rules, fx.net->faults(), "live capture", "detected");
  const auto parsed = parse_scenario(serialize_scenario(s));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->faults.size(), ids.size() + 1);

  flow::RuleSet rebuilt = build_ruleset(*parsed);
  EXPECT_EQ(rebuilt.entry_count(), parsed->entries.size());
  dataplane::FaultInjector inj;
  install_faults(*parsed, inj);
  EXPECT_EQ(inj.fault_count(), parsed->faults.size());
  EXPECT_TRUE(inj.switch_is_faulty(3));

  // The rebuilt world is semantically identical to the captured one even
  // though EntryIds were densely renumbered: canonical fingerprints match.
  core::RuleGraph graph(rebuilt);
  const core::AnalysisSnapshot rebuilt_snap(graph);
  EXPECT_EQ(core::canonical_fingerprint(rebuilt_snap),
            core::canonical_fingerprint(*snap));
}

// Satellite: installing a churn batch and then its exact inverse leaves the
// network semantically bit-identical (up to EntryId renumbering, which the
// canonical fingerprint quotients out).
TEST(Rollback, InverseChurnRestoresCanonicalFingerprint) {
  Fixture fx;
  const std::string before = core::canonical_fingerprint(*fx.mon->snapshot());
  for (std::size_t i = 0; i < 4; ++i) {
    fx.mon->enqueue(ChurnOp::install(fx.spare_entry(i)));
  }
  fx.mon->enqueue(ChurnOp::remove(5));
  fx.mon->enqueue(ChurnOp::remove(6));
  fx.mon->drain_churn();
  const std::string mutated = core::canonical_fingerprint(*fx.mon->snapshot());
  EXPECT_NE(before, mutated);

  const monitor::ChurnLog log = fx.mon->last_churn();
  ASSERT_EQ(log.applied.size(), 6u);
  for (ChurnOp& op : monitor::Monitor::invert(log)) {
    fx.mon->enqueue(std::move(op));
  }
  fx.mon->drain_churn();
  EXPECT_EQ(core::canonical_fingerprint(*fx.mon->snapshot()), before);
}

// Satellite: the detection report carries per-probe evidence — expected
// path, deviation kind, and which entries cleared on passing probes.
TEST(Evidence, DropFaultYieldsMissingProbeEvidence) {
  Fixture fx;
  const flow::EntryId bad = inject_and_flag(fx, only_drop());
  const core::DetectionReport& rep = fx.mon->last_detection();
  ASSERT_FALSE(rep.flagged_switches.empty());
  ASSERT_FALSE(rep.evidence.empty());
  EXPECT_FALSE(rep.suspicion.empty());
  EXPECT_FALSE(rep.cleared_entries.empty());
  bool missing_through_bad = false;
  for (const core::ProbeEvidence& ev : rep.evidence) {
    EXPECT_FALSE(ev.expected_path.empty());
    if (ev.deviation != core::DeviationKind::kMissing) continue;
    for (const flow::EntryId e : ev.expected_path) {
      if (e == bad) missing_through_bad = true;
    }
  }
  EXPECT_TRUE(missing_through_bad)
      << "no kMissing evidence crossed the dropped entry " << bad;
}

TEST(Diagnoser, ClassifiesDropFault) {
  Fixture fx;
  const flow::EntryId bad = inject_and_flag(fx, only_drop());
  ASSERT_EQ(fx.mon->report().flagged_switches.size(), 1u);
  const flow::SwitchId sw = fx.rules.entry(bad).switch_id;
  const FaultDiagnosis d = Diagnoser().diagnose(
      *fx.mon->snapshot(), fx.mon->last_detection(), sw);
  EXPECT_EQ(d.switch_id, sw);
  EXPECT_EQ(d.fault_class, FaultClass::kDroppedEntry) << d.to_string();
  ASSERT_FALSE(d.suspects.empty());
  EXPECT_EQ(d.suspects.front().entry_id, bad) << d.to_string();
  EXPECT_GT(d.confidence, 0.0);
  EXPECT_FALSE(d.rationale.empty());
}

TEST(Diagnoser, ClassifiesModifyFaultAsCorruption) {
  Fixture fx;
  const flow::EntryId bad = inject_and_flag(fx, only_modify(), 5);
  ASSERT_EQ(fx.mon->report().flagged_switches.size(), 1u);
  const flow::SwitchId sw = fx.rules.entry(bad).switch_id;
  const FaultDiagnosis d = Diagnoser().diagnose(
      *fx.mon->snapshot(), fx.mon->last_detection(), sw);
  EXPECT_EQ(d.fault_class, FaultClass::kCorruptedEntry) << d.to_string();
  ASSERT_FALSE(d.suspects.empty());
  EXPECT_EQ(d.suspects.front().entry_id, bad) << d.to_string();
}

TEST(Diagnoser, MisdirectSuspectsTheInjectedEntry) {
  Fixture fx;
  const flow::EntryId bad = inject_and_flag(fx, only_misdirect());
  ASSERT_EQ(fx.mon->report().flagged_switches.size(), 1u);
  const flow::SwitchId sw = fx.rules.entry(bad).switch_id;
  const FaultDiagnosis d = Diagnoser().diagnose(
      *fx.mon->snapshot(), fx.mon->last_detection(), sw);
  ASSERT_FALSE(d.suspects.empty());
  EXPECT_EQ(d.suspects.front().entry_id, bad) << d.to_string();
  // A misdirected probe that is delivered off-path classifies as
  // misdirecting output; one that vanishes downstream is observationally a
  // drop. Both point repair at the right entry.
  EXPECT_TRUE(d.fault_class == FaultClass::kMisdirectingOutput ||
              d.fault_class == FaultClass::kDroppedEntry)
      << d.to_string();
}

TEST(Diagnoser, UnknownWithoutEvidence) {
  Fixture fx;
  fx.mon->run_round();
  const core::DetectionReport empty_rep;
  const FaultDiagnosis d =
      Diagnoser().diagnose(*fx.mon->snapshot(), empty_rep, 0);
  EXPECT_EQ(d.fault_class, FaultClass::kUnknown);
  EXPECT_DOUBLE_EQ(d.confidence, 0.0);
  EXPECT_TRUE(d.suspects.empty());
}

void run_heal_case(const core::FaultMix& mix, std::uint64_t seed) {
  Fixture fx;
  const flow::EntryId bad = inject_and_flag(fx, mix, seed);
  ASSERT_EQ(fx.mon->report().flagged_switches.size(), 1u);
  const flow::SwitchId sw = fx.rules.entry(bad).switch_id;

  RepairConfig rc;
  rc.invariants = analysis::InvariantSet::builtin();
  analysis::Verifier checker(rc.invariants, rc.verifier);
  const std::size_t errors_before =
      checker.verify(*fx.mon->snapshot()).count(analysis::Severity::kError);

  RepairEngine eng(*fx.mon, *fx.ctrl, fx.loop, rc);
  const RepairOutcome out = eng.heal(sw);
  EXPECT_TRUE(out.healed) << out.to_string();
  EXPECT_FALSE(out.quarantined) << out.to_string();
  expect_no_unverified_install(out);
  EXPECT_GT(out.patches_proposed, 0u);
  EXPECT_GT(out.time_to_heal_s, 0.0);

  // Heal cleared the flag, introduced no invariant violation, and the next
  // monitoring round is quiet again.
  EXPECT_TRUE(fx.mon->report().flagged_switches.empty());
  analysis::Verifier recheck(rc.invariants, rc.verifier);
  EXPECT_EQ(
      recheck.verify(*fx.mon->snapshot()).count(analysis::Severity::kError),
      errors_before);
  const std::uint64_t failures = fx.mon->report().failures;
  fx.mon->run_round();
  EXPECT_EQ(fx.mon->report().failures, failures);
  EXPECT_TRUE(fx.mon->report().flagged_switches.empty());
}

TEST(RepairEngine, HealsDropFault) { run_heal_case(only_drop(), 7); }

TEST(RepairEngine, HealsMisdirectFault) { run_heal_case(only_misdirect(), 7); }

TEST(RepairEngine, HealsModifyFault) { run_heal_case(only_modify(), 5); }

// Satellite: concurrent churn landing between verification and install
// must force a re-verify against the new epoch — a patch verified against
// a stale snapshot never reaches the dataplane.
TEST(RepairEngine, EpochFenceReverifiesWhenChurnLandsMidHeal) {
  Fixture fx;
  const flow::EntryId bad = inject_and_flag(fx, only_drop());
  ASSERT_EQ(fx.mon->report().flagged_switches.size(), 1u);
  const flow::SwitchId sw = fx.rules.entry(bad).switch_id;

  RepairConfig rc;
  bool injected = false;
  rc.after_verify_hook = [&fx, &injected] {
    if (injected) return;
    injected = true;
    fx.mon->enqueue(ChurnOp::install(fx.spare_entry(0)));
  };
  RepairEngine eng(*fx.mon, *fx.ctrl, fx.loop, rc);
  const std::uint64_t epoch_before = fx.mon->epoch();
  const RepairOutcome out = eng.heal(sw);
  EXPECT_TRUE(injected);
  EXPECT_GE(out.verify_reruns, 1) << out.to_string();
  EXPECT_TRUE(out.healed) << out.to_string();
  expect_no_unverified_install(out);
  // The concurrent install was adopted (epoch advanced past the hook's
  // batch plus the patch batch) and coverage includes it.
  EXPECT_GT(fx.mon->epoch(), epoch_before + 1);
}

// The known-unfixable world: a whole-switch fault on a cut vertex.
// Reinstalled copies inherit the switch fault, no reroute exists, so every
// installed patch must fail its confirm, roll back, and leave the network
// semantically untouched.
TEST(RepairEngine, SwitchFaultOnCutVertexRollsBackCleanly) {
  const Scenario sc = chain_scenario();
  flow::RuleSet rules = build_ruleset(sc);
  sim::EventLoop loop;
  dataplane::Network net(rules, loop);
  controller::Controller ctrl(rules, net);
  monitor::Monitor mon(rules, ctrl, loop, {});
  mon.run_round();
  ASSERT_TRUE(mon.report().flagged_switches.empty());

  install_faults(sc, net.faults());
  for (int i = 0; i < 5 && mon.report().flagged_switches.empty(); ++i) {
    mon.run_round();
  }
  ASSERT_EQ(mon.report().flagged_switches.size(), 1u);
  EXPECT_EQ(mon.report().flagged_switches[0], 1);

  const std::string before = core::canonical_fingerprint(*mon.snapshot());
  RepairEngine eng(mon, ctrl, loop, {});
  const RepairOutcome out = eng.heal(1);
  EXPECT_FALSE(out.healed) << out.to_string();
  expect_no_unverified_install(out);
  bool any_rollback = false;
  for (const PatchAttempt& at : out.attempts) {
    if (at.installed) {
      EXPECT_TRUE(at.rolled_back)
          << strategy_name(at.strategy) << " left a failed patch installed";
      any_rollback = true;
    }
  }
  EXPECT_TRUE(any_rollback) << out.to_string();
  EXPECT_EQ(core::canonical_fingerprint(*mon.snapshot()), before);
  // The flag stays up: the switch genuinely needs hands.
  EXPECT_EQ(mon.report().flagged_switches.size(), 1u);
}

// A heal episode is a pure function of (world, seed): running the same
// scenario under different monitor thread counts produces bit-identical
// outcomes and final network state.
TEST(RepairEngine, HealIsDeterministicAcrossMonitorThreadCounts) {
  const auto run = [](int threads) {
    monitor::MonitorConfig mc;
    mc.common.threads = threads;
    Fixture fx(31, 500, mc);
    const flow::EntryId bad = inject_and_flag(fx, only_drop(), 9);
    EXPECT_EQ(fx.mon->report().flagged_switches.size(), 1u);
    RepairEngine eng(*fx.mon, *fx.ctrl, fx.loop, RepairConfig{});
    const RepairOutcome out = eng.heal(fx.rules.entry(bad).switch_id);
    return std::make_tuple(
        out.healed, out.quarantined, out.strategy, out.attempts.size(),
        out.patches_proposed, out.verify_reruns, out.time_to_heal_s,
        out.diagnosis.to_string(),
        core::canonical_fingerprint(*fx.mon->snapshot()));
  };
  const auto one = run(1);
  const auto two = run(2);
  EXPECT_EQ(one, two);
}

}  // namespace
}  // namespace sdnprobe::repair
