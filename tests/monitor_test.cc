// Behavioral tests for monitor::Monitor: the continuous-monitoring service
// owning churn ingestion, epoch swaps, incremental probe repair, and
// periodic localization rounds (DESIGN.md §12).
#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "controller/controller.h"
#include "core/scenario.h"
#include "dataplane/network.h"
#include "flow/synthesizer.h"
#include "monitor/monitor.h"
#include "topo/generator.h"

namespace sdnprobe::monitor {
namespace {

struct Fixture {
  flow::RuleSet rules;
  sim::EventLoop loop;
  std::unique_ptr<dataplane::Network> net;
  std::unique_ptr<controller::Controller> ctrl;
  std::unique_ptr<Monitor> mon;
  flow::RuleSet spare;  // same-shape entries to install as churn

  explicit Fixture(std::uint64_t seed = 11, long entries = 600,
                   MonitorConfig config = {}) {
    topo::GeneratorConfig tc;
    tc.node_count = 12;
    tc.link_count = 20;
    tc.seed = seed;
    const topo::Graph g = topo::make_rocketfuel_like(tc);
    flow::SynthesizerConfig sc;
    sc.target_entry_count = entries;
    sc.seed = seed + 1;
    rules = flow::synthesize_ruleset(g, sc);
    flow::SynthesizerConfig spare_sc = sc;
    spare_sc.target_entry_count = entries / 4;
    spare_sc.seed = seed + 2;
    spare = flow::synthesize_ruleset(g, spare_sc);
    net = std::make_unique<dataplane::Network>(rules, loop);
    ctrl = std::make_unique<controller::Controller>(rules, *net);
    mon = std::make_unique<Monitor>(rules, *ctrl, loop, config);
  }

  flow::FlowEntry spare_entry(std::size_t i) {
    flow::FlowEntry e = spare.entry(static_cast<flow::EntryId>(i));
    e.id = -1;
    return e;
  }
};

// Vertices of active entries covered by the monitor's probe paths.
double coverage(const Monitor& mon) { return mon.status().coverage_fraction; }

TEST(Monitor, InitialEpochCoversAllActiveVertices) {
  Fixture fx;
  EXPECT_EQ(fx.mon->epoch(), 1u);
  EXPECT_GT(fx.mon->probes().size(), 0u);
  const MonitorStatus st = fx.mon->status();
  EXPECT_GT(st.active_vertices, 0u);
  EXPECT_EQ(st.covered_vertices, st.active_vertices);
  EXPECT_DOUBLE_EQ(st.coverage_fraction, 1.0);
}

TEST(Monitor, DrainChurnAppliesInstallsAndRemovalsAndBumpsEpoch) {
  Fixture fx;
  const auto old_snapshot = fx.mon->snapshot();
  const std::size_t before = fx.rules.entry_count();
  fx.mon->enqueue(ChurnOp::install(fx.spare_entry(0)));
  fx.mon->enqueue(ChurnOp::install(fx.spare_entry(1)));
  fx.mon->enqueue(ChurnOp::remove(3));
  EXPECT_EQ(fx.mon->pending_churn(), 3u);
  fx.mon->drain_churn();
  EXPECT_EQ(fx.mon->pending_churn(), 0u);
  EXPECT_EQ(fx.mon->epoch(), 2u);
  EXPECT_EQ(fx.rules.entry_count(), before + 2);
  EXPECT_TRUE(fx.rules.is_removed(3));
  EXPECT_EQ(fx.mon->churn_stats().batches, 1u);
  EXPECT_EQ(fx.mon->churn_stats().installs, 2u);
  EXPECT_EQ(fx.mon->churn_stats().removals, 1u);
  // The old epoch's snapshot stays alive and consistent for its holders.
  EXPECT_NE(old_snapshot.get(), fx.mon->snapshot().get());
  EXPECT_LT(old_snapshot->vertex_count() - 2,
            fx.mon->snapshot()->vertex_count() + 2);  // both usable
  // The repaired probe set covers the post-churn graph fully again.
  EXPECT_DOUBLE_EQ(coverage(*fx.mon), 1.0);
}

TEST(Monitor, IncrementalRepairKeepsUntouchedProbes) {
  Fixture fx;
  const std::size_t initial = fx.mon->probes().size();
  fx.mon->enqueue(ChurnOp::install(fx.spare_entry(0)));
  fx.mon->drain_churn();
  const ChurnStats& st = fx.mon->churn_stats();
  EXPECT_GT(st.probes_kept, 0u);
  // One small install must not rebuild the whole probe set.
  EXPECT_LT(st.probes_regenerated, initial);
  EXPECT_DOUBLE_EQ(coverage(*fx.mon), 1.0);
}

TEST(Monitor, RepairedProbesKeepUniqueHeaders) {
  Fixture fx;
  for (std::size_t i = 0; i < 8; ++i) {
    fx.mon->enqueue(ChurnOp::install(fx.spare_entry(i)));
  }
  fx.mon->drain_churn();
  std::unordered_set<hsa::TernaryString, hsa::TernaryStringHash> headers;
  for (const core::Probe& p : fx.mon->probes()) {
    EXPECT_TRUE(headers.insert(p.header).second)
        << "duplicate probe header after repair";
  }
}

TEST(Monitor, HealthyRoundsFlagNothingAndAdvance) {
  Fixture fx;
  fx.mon->run_round();
  fx.mon->run_round();
  const MonitorReport& rep = fx.mon->report();
  EXPECT_EQ(rep.rounds, 2u);
  EXPECT_TRUE(rep.flagged_switches.empty());
  EXPECT_GT(rep.probes_sent, 0u);
  ASSERT_EQ(rep.round_log.size(), 2u);
  EXPECT_EQ(rep.round_log[0].epoch, 1u);
  EXPECT_GE(rep.round_log[1].start_s, rep.round_log[0].end_s);
}

TEST(Monitor, LocalizesFaultInjectedBetweenRounds) {
  Fixture fx;
  fx.mon->run_round();
  EXPECT_TRUE(fx.mon->report().flagged_switches.empty());
  // Break a rule after the first clean round.
  util::Rng rng(7);
  const auto snap = fx.mon->snapshot();
  const auto ids = core::choose_faulty_entries(snap->graph(), 1, rng);
  core::FaultMix mix;
  mix.misdirect = false;
  mix.modify = false;  // drop fault
  fx.net->faults().add_fault(ids[0],
                             core::make_fault(snap->graph(), ids[0], mix, rng));
  fx.mon->run_round();
  const MonitorReport& rep = fx.mon->report();
  ASSERT_EQ(rep.flagged_switches.size(), 1u);
  EXPECT_EQ(rep.flagged_switches[0], fx.rules.entry(ids[0]).switch_id);
  EXPECT_EQ(rep.round_log[1].newly_flagged.size(), 1u);
  // Probes through the flagged switch are retired; coverage reports the
  // honest dip, and the next round is quiet again.
  EXPECT_GT(fx.mon->churn_stats().probes_retired, 0u);
  EXPECT_LT(coverage(*fx.mon), 1.0);
  const std::uint64_t failures_before = rep.failures;
  fx.mon->run_round();
  EXPECT_EQ(fx.mon->report().failures, failures_before);
}

TEST(Monitor, StartSchedulesPeriodicRoundsAndStopCancels) {
  MonitorConfig cfg;
  cfg.round_period_s = 0.5;
  Fixture fx(11, 600, cfg);
  fx.mon->start();
  EXPECT_TRUE(fx.mon->running());
  fx.loop.run_until(2.6);
  const std::uint64_t rounds_at_stop = fx.mon->report().rounds;
  EXPECT_GE(rounds_at_stop, 3u);
  fx.mon->stop();
  EXPECT_FALSE(fx.mon->running());
  fx.loop.run_until(10.0);
  EXPECT_EQ(fx.mon->report().rounds, rounds_at_stop);
}

TEST(Monitor, ChurnBetweenScheduledRoundsIsPickedUp) {
  MonitorConfig cfg;
  cfg.round_period_s = 1.0;
  Fixture fx(13, 600, cfg);
  fx.mon->start();
  fx.loop.run_until(1.5);  // first round done against epoch 1
  EXPECT_EQ(fx.mon->epoch(), 1u);
  fx.mon->enqueue(ChurnOp::install(fx.spare_entry(0)));
  fx.mon->enqueue(ChurnOp::remove(5));
  fx.loop.run_until(4.0);
  fx.mon->stop();
  EXPECT_EQ(fx.mon->epoch(), 2u);
  EXPECT_GE(fx.mon->report().rounds, 2u);
  // Rounds after the drain ran against the new epoch.
  EXPECT_EQ(fx.mon->report().round_log.back().epoch, 2u);
  EXPECT_DOUBLE_EQ(coverage(*fx.mon), 1.0);
  // Clean rounds after churn must not flag anything: the analysis and the
  // runtime tables agree on equal-priority tie-breaks (insertion order).
  EXPECT_TRUE(fx.mon->report().flagged_switches.empty());
}

// Regression: a localization episode redirects terminal entries to the test
// table and restores them afterwards. The modify-flow must keep each entry's
// position — erase+reinsert would move it behind later equal-priority
// entries, silently changing which entry wins overlapping headers and
// making the monitor's kept probes fail on a healthy network.
TEST(Monitor, RoundsPreserveRuntimeTableOrder) {
  Fixture fx;
  std::vector<std::vector<flow::EntryId>> before;
  for (flow::SwitchId s = 0; s < fx.rules.switch_count(); ++s) {
    for (flow::TableId t = 0; t < fx.rules.table_count(s); ++t) {
      std::vector<flow::EntryId> ids;
      for (const auto& e : fx.net->runtime_table(s, t).entries()) {
        ids.push_back(e.id);
      }
      before.push_back(std::move(ids));
    }
  }
  fx.mon->run_round();
  fx.mon->run_round();
  std::size_t i = 0;
  for (flow::SwitchId s = 0; s < fx.rules.switch_count(); ++s) {
    for (flow::TableId t = 0; t < fx.rules.table_count(s); ++t) {
      std::vector<flow::EntryId> ids;
      for (const auto& e : fx.net->runtime_table(s, t).entries()) {
        ids.push_back(e.id);
      }
      EXPECT_EQ(ids, before[i]) << "switch " << s << " table " << t
                                << " reordered by a localization episode";
      ++i;
    }
  }
}

TEST(Monitor, FullRegenerationModeAlsoMaintainsCoverage) {
  MonitorConfig cfg;
  cfg.incremental_repair = false;
  Fixture fx(17, 500, cfg);
  fx.mon->enqueue(ChurnOp::install(fx.spare_entry(0)));
  fx.mon->drain_churn();
  EXPECT_EQ(fx.mon->churn_stats().probes_kept, 0u);
  EXPECT_GT(fx.mon->churn_stats().probes_regenerated, 0u);
  EXPECT_DOUBLE_EQ(coverage(*fx.mon), 1.0);
}

TEST(Monitor, IncrementalAndFullRegenCoverEquivalently) {
  MonitorConfig inc_cfg;
  Fixture inc(19, 500, inc_cfg);
  MonitorConfig full_cfg;
  full_cfg.incremental_repair = false;
  Fixture full(19, 500, full_cfg);
  for (std::size_t i = 0; i < 6; ++i) {
    inc.mon->enqueue(ChurnOp::install(inc.spare_entry(i)));
    full.mon->enqueue(ChurnOp::install(full.spare_entry(i)));
    inc.mon->enqueue(ChurnOp::remove(static_cast<flow::EntryId>(10 + i)));
    full.mon->enqueue(ChurnOp::remove(static_cast<flow::EntryId>(10 + i)));
  }
  inc.mon->drain_churn();
  full.mon->drain_churn();
  const MonitorStatus si = inc.mon->status();
  const MonitorStatus sf = full.mon->status();
  EXPECT_EQ(si.active_vertices, sf.active_vertices);
  EXPECT_EQ(si.covered_vertices, sf.covered_vertices);
  EXPECT_DOUBLE_EQ(si.coverage_fraction, sf.coverage_fraction);
}

TEST(Monitor, StatusReportsUptimeOnBothClocks) {
  Fixture fx;
  fx.loop.schedule_in(3.0, [] {});
  fx.loop.run();
  const MonitorStatus st = fx.mon->status();
  EXPECT_GE(st.uptime_sim_s, 3.0);
  EXPECT_GE(st.uptime_wall_s, 0.0);
}

TEST(Monitor, VerifiesInvariantsAtEveryEpochSwap) {
  MonitorConfig cfg;
  cfg.verify_invariants = true;
  cfg.invariants = analysis::InvariantSet::builtin();
  Fixture fx(23, 500, cfg);
  // Construction ran one full verify over epoch 1.
  EXPECT_EQ(fx.mon->verify_summary().runs, 1u);
  EXPECT_EQ(fx.mon->verify_summary().full_runs, 1u);
  const std::string epoch1 = fx.mon->last_verify_report().to_string();

  fx.mon->enqueue(ChurnOp::install(fx.spare_entry(0)));
  fx.mon->enqueue(ChurnOp::remove(7));
  fx.mon->drain_churn();
  // The churn batch triggered one incremental run with class reuse, and the
  // status gauge mirrors the latest report's error count.
  const VerifySummary& vs = fx.mon->verify_summary();
  EXPECT_EQ(vs.runs, 2u);
  EXPECT_EQ(vs.full_runs, 1u);
  EXPECT_GT(vs.classes_reused, 0u);
  EXPECT_TRUE(fx.mon->last_verify_report().is_sorted());
  EXPECT_EQ(fx.mon->status().invariant_violations,
            fx.mon->last_verify_report().count(analysis::Severity::kError));

  // The incremental report agrees with a from-scratch verify of the same
  // epoch's snapshot (the delta-slicing contract, end to end).
  analysis::Verifier fresh(cfg.invariants, cfg.verifier);
  const analysis::VerifyReport full = fresh.verify(*fx.mon->snapshot());
  EXPECT_EQ(fx.mon->last_verify_report().to_string(), full.to_string());
  // Epoch state actually changed between the runs we compared.
  (void)epoch1;
}

TEST(Monitor, VerificationDisabledLeavesSummaryUntouched) {
  Fixture fx;
  fx.mon->enqueue(ChurnOp::install(fx.spare_entry(0)));
  fx.mon->drain_churn();
  EXPECT_EQ(fx.mon->verify_summary().runs, 0u);
  EXPECT_TRUE(fx.mon->last_verify_report().empty());
  EXPECT_EQ(fx.mon->status().invariant_violations, 0u);
}

}  // namespace
}  // namespace sdnprobe::monitor
