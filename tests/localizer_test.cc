// Behavioral tests for Algorithm 2 (FaultLocalizer) and the scenario
// helpers: exactness on persistent faults, intermittent and targeting fault
// handling, detour blind spots, suspicion tracking, and accuracy scoring.
#include <gtest/gtest.h>

#include "baselines/per_rule.h"
#include "controller/controller.h"
#include "core/analysis_snapshot.h"
#include "core/localizer.h"
#include "core/rule_graph.h"
#include "core/scenario.h"
#include "dataplane/network.h"
#include "flow/synthesizer.h"
#include "topo/generator.h"

namespace sdnprobe::core {
namespace {

struct Fixture {
  flow::RuleSet rules;
  std::unique_ptr<RuleGraph> graph;
  std::unique_ptr<AnalysisSnapshot> snap;
  sim::EventLoop loop;
  std::unique_ptr<dataplane::Network> net;
  std::unique_ptr<controller::Controller> ctrl;

  explicit Fixture(std::uint64_t seed = 4, long entries = 1000) {
    topo::GeneratorConfig tc;
    tc.node_count = 14;
    tc.link_count = 24;
    tc.seed = seed;
    const topo::Graph g = topo::make_rocketfuel_like(tc);
    flow::SynthesizerConfig sc;
    sc.target_entry_count = entries;
    sc.seed = seed + 1;
    rules = flow::synthesize_ruleset(g, sc);
    graph = std::make_unique<RuleGraph>(rules);
    snap = std::make_unique<AnalysisSnapshot>(*graph);
    net = std::make_unique<dataplane::Network>(rules, loop);
    ctrl = std::make_unique<controller::Controller>(rules, *net);
  }
};

TEST(Localizer, ExactOnModifyFault) {
  Fixture fx;
  util::Rng rng(3);
  const auto ids = choose_faulty_entries(*fx.graph, 1, rng);
  FaultMix mix;
  mix.drop = false;
  mix.misdirect = false;  // modify only
  fx.net->faults().add_fault(ids[0], make_fault(*fx.graph, ids[0], mix, rng));
  FaultLocalizer loc(*fx.snap, *fx.ctrl, fx.loop);
  const auto rep = loc.run();
  ASSERT_EQ(rep.flagged_switches.size(), 1u);
  EXPECT_EQ(rep.flagged_switches[0], fx.rules.entry(ids[0]).switch_id);
}

TEST(Localizer, ExactOnMisdirectFaultChainRuleset) {
  // Chain-style ruleset: misdirected packets cannot be rescued by
  // aggregates, so misdirection is always caught (Fig 9(a) setting).
  topo::GeneratorConfig tc;
  tc.node_count = 14;
  tc.link_count = 24;
  tc.seed = 6;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 800;
  sc.aggregates = false;
  sc.short_prefix_fraction = 0.0;
  sc.seed = 7;
  const flow::RuleSet rules = flow::synthesize_ruleset(g, sc);
  RuleGraph graph(rules);
  AnalysisSnapshot snap(graph);
  sim::EventLoop loop;
  dataplane::Network net(rules, loop);
  controller::Controller ctrl(rules, net);
  util::Rng rng(5);
  const auto ids = choose_faulty_entries(graph, 2, rng);
  FaultMix mix;
  mix.drop = false;
  mix.modify = false;  // misdirect only
  for (const auto id : ids) {
    net.faults().add_fault(id, make_fault(graph, id, mix, rng));
  }
  FaultLocalizer loc(snap, ctrl, loop);
  const auto rep = loc.run();
  const auto score = score_detection(rep.flagged_switches,
                                     net.faulty_switches(),
                                     rules.switch_count());
  EXPECT_EQ(score.false_negative, 0u);
  EXPECT_EQ(score.false_positive, 0u);
}

TEST(Localizer, IntermittentFaultCaughtWithSustainedMonitoring) {
  Fixture fx(9, 900);
  util::Rng rng(11);
  FaultMix mix;
  mix.misdirect = mix.modify = false;
  mix.intermittent_fraction = 1.0;
  plan_basic_faults(*fx.graph, 2, mix, rng, &fx.net->faults());
  const auto truth = fx.net->faulty_switches();
  LocalizerConfig lc;
  lc.max_rounds = 300;
  lc.quiet_full_rounds_to_stop = 40;
  FaultLocalizer loc(*fx.snap, *fx.ctrl, fx.loop, lc);
  const auto rep = loc.run([&truth](const DetectionReport& r) {
    for (const auto s : truth) {
      if (!r.flagged(s)) return false;
    }
    return true;
  });
  const auto score = score_detection(rep.flagged_switches, truth,
                                     fx.rules.switch_count());
  EXPECT_EQ(score.false_negative, 0u);
  EXPECT_EQ(score.false_positive, 0u)
      << "suspicion-based flagging must not blame benign co-path rules";
}

TEST(Localizer, SuspicionLevelsExposeTheCulprit) {
  Fixture fx(12, 900);
  util::Rng rng(2);
  const auto ids = choose_faulty_entries(*fx.graph, 1, rng);
  fx.net->faults().add_fault(ids[0], dataplane::FaultSpec::Drop());
  FaultLocalizer loc(*fx.snap, *fx.ctrl, fx.loop);
  loc.run();
  const auto& suspicion = loc.suspicion_levels();
  int best = -1;
  flow::EntryId best_entry = -1;
  for (const auto& [e, s] : suspicion) {
    if (s > best) {
      best = s;
      best_entry = e;
    }
  }
  EXPECT_EQ(best_entry, ids[0]);
}

TEST(Localizer, DeterministicMissesDetourRandomizedCatches) {
  for (const bool randomized : {false, true}) {
    Fixture fx(4, 1200);
    util::Rng rng(99);
    const auto planted =
        plan_detour_faults(*fx.graph, 3, /*min_skip=*/2, rng,
                           &fx.net->faults());
    ASSERT_FALSE(planted.empty());
    const auto truth = fx.net->faulty_switches();
    LocalizerConfig lc;
    lc.common.randomized = randomized;
    lc.max_rounds = randomized ? 150 : 10;
    lc.quiet_full_rounds_to_stop = randomized ? 150 : 1;
    FaultLocalizer loc(*fx.snap, *fx.ctrl, fx.loop, lc);
    const auto rep = loc.run([&truth](const DetectionReport& r) {
      for (const auto s : truth) {
        if (!r.flagged(s)) return false;
      }
      return true;
    });
    const auto score = score_detection(rep.flagged_switches, truth,
                                       fx.rules.switch_count());
    if (randomized) {
      EXPECT_EQ(score.false_negative, 0u)
          << "randomized tested paths must expose every colluding pair";
    } else {
      EXPECT_GT(score.false_negative, 0u)
          << "fixed tested paths must have a detour blind spot (Table I)";
    }
    EXPECT_EQ(score.false_positive, 0u);
  }
}

TEST(Localizer, ReportBookkeepingConsistent) {
  Fixture fx(5, 600);
  FaultLocalizer loc(*fx.snap, *fx.ctrl, fx.loop);
  const auto rep = loc.run();
  EXPECT_EQ(rep.rounds, static_cast<int>(rep.round_log.size()));
  EXPECT_TRUE(rep.flagged_switches.empty());
  EXPECT_GT(rep.total_time_s, 0.0);
  double prev_end = 0.0;
  for (const auto& r : rep.round_log) {
    EXPECT_GE(r.start_s, prev_end);
    EXPECT_GE(r.end_s, r.start_s);
    prev_end = r.end_s;
  }
}

TEST(Scenario, ScoreDetectionCounts) {
  const auto c = score_detection(/*flagged=*/{1, 2, 3},
                                 /*ground_truth=*/{2, 4}, /*switches=*/6);
  EXPECT_EQ(c.true_positive, 1u);   // 2
  EXPECT_EQ(c.false_positive, 2u);  // 1, 3
  EXPECT_EQ(c.false_negative, 1u);  // 4
  EXPECT_EQ(c.true_negative, 2u);   // 0, 5
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.5);
  EXPECT_DOUBLE_EQ(c.false_negative_rate(), 0.5);
}

TEST(Scenario, SwitchFractionSelectionLeavesCleanSwitches) {
  Fixture fx(8, 900);
  util::Rng rng(13);
  const auto entries = choose_entries_on_switch_fraction(
      *fx.graph, 0.3, /*entries_per_switch=*/2, rng);
  std::set<flow::SwitchId> hit;
  for (const auto e : entries) hit.insert(fx.rules.entry(e).switch_id);
  EXPECT_GT(hit.size(), 0u);
  EXPECT_LT(static_cast<int>(hit.size()), fx.rules.switch_count())
      << "a fraction sweep must leave clean switches for FPR to be defined";
}

TEST(Scenario, TrafficModelCubesIntersectFlowSpaces) {
  Fixture fx(3, 800);
  util::Rng rng(21);
  const TrafficModel model = make_traffic_model(*fx.graph, 4, rng);
  ASSERT_EQ(model.popular_cubes.size(), 4u);
  // Every popular cube must intersect most rules' input spaces (it only
  // pins host-like bits).
  int intersecting = 0;
  const int n = std::min(fx.graph->vertex_count(), 100);
  for (VertexId v = 0; v < n; ++v) {
    if (!fx.graph->in_space(v).intersect(model.popular_cubes[0]).is_empty()) {
      ++intersecting;
    }
  }
  EXPECT_GT(intersecting, n * 9 / 10);
}

TEST(PerRuleBaseline, CleanNetworkFlagsNothing) {
  Fixture fx(2, 500);
  baselines::PerRuleTest prt(*fx.snap, *fx.ctrl, fx.loop);
  const auto rep = prt.run();
  EXPECT_TRUE(rep.flagged_switches.empty());
  EXPECT_EQ(rep.probes_sent, prt.probe_count());
}

}  // namespace
}  // namespace sdnprobe::core
