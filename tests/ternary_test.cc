// Unit tests for hsa::TernaryString: parsing, intersection, coverage,
// set-field transform and its inverse, and sampling — the primitives every
// higher layer builds on.
#include "hsa/ternary.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sdnprobe::hsa {
namespace {

TEST(TernaryString, ParseAndToStringRoundTrip) {
  const auto t = TernaryString::parse("0010xxxx");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->width(), 8);
  EXPECT_EQ(t->to_string(), "0010xxxx");
  EXPECT_EQ(t->get(0), Trit::kZero);
  EXPECT_EQ(t->get(2), Trit::kOne);
  EXPECT_EQ(t->get(4), Trit::kWild);
}

TEST(TernaryString, ParseRejectsBadInput) {
  EXPECT_FALSE(TernaryString::parse("01a").has_value());
  EXPECT_FALSE(TernaryString::parse(std::string(200, 'x')).has_value());
}

TEST(TernaryString, ParseAcceptsUppercaseWildcard) {
  const auto t = TernaryString::parse("0X1");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->get(1), Trit::kWild);
}

TEST(TernaryString, ExactBuildsBinaryRendering) {
  const auto t = TernaryString::exact(0b0010'1010, 8);
  EXPECT_EQ(t.to_string(), "00101010");
  EXPECT_TRUE(t.is_concrete());
  EXPECT_EQ(t.as_uint(), 0b0010'1010u);
}

TEST(TernaryString, PrefixMatchesTopBits) {
  const auto t = TernaryString::prefix(0xC0A80000u, 16, 32);
  EXPECT_EQ(t.to_string().substr(0, 16), "1100000010101000");
  EXPECT_EQ(t.wildcard_count(), 16);
}

TEST(TernaryString, WildcardIsAllWild) {
  const auto t = TernaryString::wildcard(12);
  EXPECT_EQ(t.wildcard_count(), 12);
  EXPECT_FALSE(t.is_concrete());
}

TEST(TernaryString, IntersectCompatible) {
  const auto a = *TernaryString::parse("00x1xxxx");
  const auto b = *TernaryString::parse("0011xxx0");
  const auto c = a.intersect(b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->to_string(), "0011xxx0");
}

TEST(TernaryString, IntersectDisjoint) {
  const auto a = *TernaryString::parse("001xxxxx");
  const auto b = *TernaryString::parse("000xxxxx");
  EXPECT_FALSE(a.intersect(b).has_value());
  EXPECT_FALSE(a.intersects(b));
}

TEST(TernaryString, PaperExampleEdgeCheck) {
  // From §V-A: 0011xxxx ∩ 001xxxxx is non-empty...
  const auto b2_out = *TernaryString::parse("0011xxxx");
  const auto c2_match = *TernaryString::parse("001xxxxx");
  EXPECT_TRUE(b2_out.intersects(c2_match));
  // ...but 00100xxx ∩ 0011xxxx is empty.
  const auto e1_match = *TernaryString::parse("00100xxx");
  EXPECT_FALSE(b2_out.intersects(e1_match));
}

TEST(TernaryString, CoversIsSupersetRelation) {
  const auto wide = *TernaryString::parse("001xxxxx");
  const auto narrow = *TernaryString::parse("0010x1xx");
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
  EXPECT_TRUE(wide.covers(wide));
}

TEST(TernaryString, TransformAppliesSetField) {
  // Paper's d1 example: input 000xxxxx, set 0111xxxx -> output 0111xxxx.
  const auto in = *TernaryString::parse("000xxxxx");
  const auto set = *TernaryString::parse("0111xxxx");
  EXPECT_EQ(in.transform(set).to_string(), "0111xxxx");
}

TEST(TernaryString, TransformIdentityWithAllWildcardSetField) {
  const auto in = *TernaryString::parse("00x1x0x1");
  const auto id = TernaryString::wildcard(8);
  EXPECT_EQ(in.transform(id), in);
}

TEST(TernaryString, TransformOverwritesOnlySetBits) {
  const auto in = *TernaryString::parse("1010xxxx");
  const auto set = *TernaryString::parse("xx11xxxx");
  EXPECT_EQ(in.transform(set).to_string(), "1011xxxx");
}

TEST(TernaryString, InverseTransformRecoversPreimage) {
  const auto set = *TernaryString::parse("xx11xxxx");
  const auto post = *TernaryString::parse("1011xxxx");
  const auto pre = post.inverse_transform(set);
  ASSERT_TRUE(pre.has_value());
  // Bits written by the set field become unconstrained on the input side.
  EXPECT_EQ(pre->to_string(), "10xxxxxx");
}

TEST(TernaryString, InverseTransformDetectsContradiction) {
  const auto set = *TernaryString::parse("xx11xxxx");
  const auto post = *TernaryString::parse("1001xxxx");  // bit 2 must be 1
  EXPECT_FALSE(post.inverse_transform(set).has_value());
}

TEST(TernaryString, InverseTransformThenTransformLandsInside) {
  util::Rng rng(42);
  const auto set = *TernaryString::parse("x1x0xxxx");
  const auto post = *TernaryString::parse("x1xxxx01");
  const auto pre = post.inverse_transform(set);
  ASSERT_TRUE(pre.has_value());
  for (int i = 0; i < 32; ++i) {
    const auto h = pre->sample(rng);
    EXPECT_TRUE(post.covers(h.transform(set)));
  }
}

TEST(TernaryString, SampleStaysInsideCube) {
  util::Rng rng(7);
  const auto cube = *TernaryString::parse("0x1x0x1x");
  for (int i = 0; i < 64; ++i) {
    const auto h = cube.sample(rng);
    EXPECT_TRUE(h.is_concrete());
    EXPECT_TRUE(cube.covers(h));
  }
}

TEST(TernaryString, SampleVariesWildcardBits) {
  util::Rng rng(7);
  const auto cube = *TernaryString::parse("xxxxxxxx");
  bool saw_difference = false;
  const auto first = cube.sample(rng);
  for (int i = 0; i < 32 && !saw_difference; ++i) {
    saw_difference = !(cube.sample(rng) == first);
  }
  EXPECT_TRUE(saw_difference);
}

TEST(TernaryString, HashDistinguishesMaskFromBits) {
  const auto a = *TernaryString::parse("0x");  // exact 0 then wildcard
  const auto b = *TernaryString::parse("x0");
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(TernaryString, WideHeaders) {
  // Campus rulesets use widths up to 96 bits; exercise the two-word path.
  std::string s(96, 'x');
  s[0] = '1';
  s[70] = '0';
  const auto t = TernaryString::parse(s);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->get(70), Trit::kZero);
  EXPECT_EQ(t->wildcard_count(), 94);
  EXPECT_EQ(t->to_string(), s);
}

}  // namespace
}  // namespace sdnprobe::hsa
