// The PR-level determinism contract: MLPC covers, probe headers, and probe
// stats are bit-identical for every thread count (threads = 1, 2, 8), both
// with transient pools and with a shared pre-built pool, on a Table-2-sized
// topology (30 switches / 54 links, thousands of rules).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis_snapshot.h"
#include "core/mlpc.h"
#include "core/probe_engine.h"
#include "core/rule_graph.h"
#include "flow/synthesizer.h"
#include "topo/generator.h"
#include "util/thread_pool.h"

namespace sdnprobe::core {
namespace {

flow::RuleSet table2_sized_ruleset() {
  topo::GeneratorConfig tc;
  tc.node_count = 30;
  tc.link_count = 54;
  tc.seed = 2;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 6000;
  sc.aggregates = true;
  sc.k_paths = 3;
  sc.seed = 71;
  return flow::synthesize_ruleset(g, sc);
}

std::vector<std::vector<VertexId>> cover_paths(const Cover& c) {
  std::vector<std::vector<VertexId>> out;
  out.reserve(c.paths.size());
  for (const auto& p : c.paths) out.push_back(p.vertices);
  return out;
}

std::vector<std::string> probe_fingerprints(const std::vector<Probe>& probes) {
  std::vector<std::string> out;
  out.reserve(probes.size());
  for (const Probe& p : probes) {
    std::string fp = p.header.to_string() + "|" +
                     p.expected_return.to_string() + "|";
    for (const VertexId v : p.path) fp += std::to_string(v) + ",";
    out.push_back(std::move(fp));
  }
  return out;
}

TEST(ParallelDeterminism, MlpcCoverIdenticalAcrossThreadCounts) {
  const flow::RuleSet rs = table2_sized_ruleset();
  const RuleGraph graph(rs);
  const AnalysisSnapshot snap(graph);

  MlpcConfig mc;
  mc.deterministic_restarts = 6;
  mc.threads = 1;
  const Cover reference = MlpcSolver(mc).solve(snap);
  EXPECT_GT(reference.path_count(), 0u);

  for (const int threads : {2, 8}) {
    mc.threads = threads;
    const Cover cover = MlpcSolver(mc).solve(snap);
    EXPECT_EQ(cover_paths(cover), cover_paths(reference))
        << "threads=" << threads << " changed the deterministic cover";
  }

  // A shared pre-built pool (the FaultLocalizer setup) must agree too.
  util::ThreadPool pool(8);
  mc.threads = 8;
  const Cover pooled = MlpcSolver(mc, &pool).solve(snap);
  EXPECT_EQ(cover_paths(pooled), cover_paths(reference));
}

TEST(ParallelDeterminism, ProbeHeadersAndStatsIdenticalAcrossThreadCounts) {
  const flow::RuleSet rs = table2_sized_ruleset();
  const RuleGraph graph(rs);
  const AnalysisSnapshot snap(graph);
  const Cover cover = MlpcSolver().solve(snap);

  std::vector<std::string> ref_fp;
  ProbeStats ref_stats;
  std::uint64_t ref_rng_after = 0;
  for (const int threads : {1, 2, 8}) {
    ProbeEngineConfig pc;
    pc.threads = threads;
    ProbeEngine engine(snap, pc);
    util::Rng rng(5);
    const auto probes = engine.make_probes(cover, rng);
    ASSERT_EQ(probes.size(), cover.path_count());
    const auto fp = probe_fingerprints(probes);
    // make_probes consumes exactly one caller draw, so the caller's stream
    // position must also be thread-count independent.
    const std::uint64_t rng_after = rng.next();
    if (threads == 1) {
      ref_fp = fp;
      ref_stats = engine.stats();
      ref_rng_after = rng_after;
      continue;
    }
    EXPECT_EQ(fp, ref_fp) << "threads=" << threads << " changed headers";
    EXPECT_TRUE(engine.stats() == ref_stats)
        << "threads=" << threads << " changed ProbeStats";
    EXPECT_EQ(rng_after, ref_rng_after);
  }

  // Shared pool variant.
  util::ThreadPool pool(8);
  ProbeEngineConfig pc;
  pc.threads = 8;
  ProbeEngine engine(snap, pc, &pool);
  util::Rng rng(5);
  EXPECT_EQ(probe_fingerprints(engine.make_probes(cover, rng)), ref_fp);
  EXPECT_TRUE(engine.stats() == ref_stats);
}

TEST(ParallelDeterminism, SnapshotLegalClosureIsStableUnderConcurrentAccess) {
  const flow::RuleSet rs = table2_sized_ruleset();
  const RuleGraph graph(rs);
  const AnalysisSnapshot snap(graph);
  // First access may race from many workers; all must observe one closure.
  util::ThreadPool pool(8);
  std::vector<const std::vector<std::vector<VertexId>>*> seen(16);
  util::parallel_for(&pool, seen.size(),
                     [&](std::size_t i) { seen[i] = &snap.legal_closure(); });
  for (const auto* p : seen) EXPECT_EQ(p, seen[0]);
  EXPECT_EQ(snap.legal_closure().size(),
            static_cast<std::size_t>(snap.vertex_count()));
}

}  // namespace
}  // namespace sdnprobe::core
