// The PR-level determinism contract: MLPC covers, probe headers, probe
// stats, and end-to-end DetectionReports are bit-identical for every thread
// count, both with transient pools and with a shared pre-built pool, on a
// Table-2-sized topology (30 switches / 54 links, thousands of rules).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "core/analysis_snapshot.h"
#include "core/localizer.h"
#include "core/mlpc.h"
#include "core/probe_engine.h"
#include "core/rule_graph.h"
#include "core/scenario.h"
#include "dataplane/network.h"
#include "flow/synthesizer.h"
#include "monitor/monitor.h"
#include "sim/event_loop.h"
#include "topo/generator.h"
#include "util/thread_pool.h"

namespace sdnprobe::core {
namespace {

flow::RuleSet table2_sized_ruleset() {
  topo::GeneratorConfig tc;
  tc.node_count = 30;
  tc.link_count = 54;
  tc.seed = 2;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 6000;
  sc.aggregates = true;
  sc.k_paths = 3;
  sc.seed = 71;
  return flow::synthesize_ruleset(g, sc);
}

std::vector<std::vector<VertexId>> cover_paths(const Cover& c) {
  std::vector<std::vector<VertexId>> out;
  out.reserve(c.paths.size());
  for (const auto& p : c.paths) out.push_back(p.vertices);
  return out;
}

std::vector<std::string> probe_fingerprints(const std::vector<Probe>& probes) {
  std::vector<std::string> out;
  out.reserve(probes.size());
  for (const Probe& p : probes) {
    std::string fp = p.header.to_string() + "|" +
                     p.expected_return.to_string() + "|";
    for (const VertexId v : p.path) fp += std::to_string(v) + ",";
    out.push_back(std::move(fp));
  }
  return out;
}

TEST(ParallelDeterminism, MlpcCoverIdenticalAcrossThreadCounts) {
  const flow::RuleSet rs = table2_sized_ruleset();
  const RuleGraph graph(rs);
  const AnalysisSnapshot snap(graph);

  MlpcConfig mc;
  mc.deterministic_restarts = 6;
  mc.common.threads = 1;
  const Cover reference = MlpcSolver(mc).solve(snap);
  EXPECT_GT(reference.path_count(), 0u);

  for (const int threads : {2, 8}) {
    mc.common.threads = threads;
    const Cover cover = MlpcSolver(mc).solve(snap);
    EXPECT_EQ(cover_paths(cover), cover_paths(reference))
        << "threads=" << threads << " changed the deterministic cover";
  }

  // A shared pre-built pool (the FaultLocalizer setup) must agree too.
  util::ThreadPool pool(8);
  mc.common.threads = 8;
  const Cover pooled = MlpcSolver(mc, &pool).solve(snap);
  EXPECT_EQ(cover_paths(pooled), cover_paths(reference));
}

TEST(ParallelDeterminism, ProbeHeadersAndStatsIdenticalAcrossThreadCounts) {
  const flow::RuleSet rs = table2_sized_ruleset();
  const RuleGraph graph(rs);
  const AnalysisSnapshot snap(graph);
  const Cover cover = MlpcSolver().solve(snap);

  std::vector<std::string> ref_fp;
  ProbeStats ref_stats;
  std::uint64_t ref_rng_after = 0;
  for (const int threads : {1, 2, 8}) {
    ProbeEngineConfig pc;
    pc.common.threads = threads;
    ProbeEngine engine(snap, pc);
    util::Rng rng(5);
    const auto probes = engine.make_probes(cover, rng);
    ASSERT_EQ(probes.size(), cover.path_count());
    const auto fp = probe_fingerprints(probes);
    // make_probes consumes exactly one caller draw, so the caller's stream
    // position must also be thread-count independent.
    const std::uint64_t rng_after = rng.next();
    if (threads == 1) {
      ref_fp = fp;
      ref_stats = engine.stats();
      ref_rng_after = rng_after;
      continue;
    }
    EXPECT_EQ(fp, ref_fp) << "threads=" << threads << " changed headers";
    EXPECT_TRUE(engine.stats() == ref_stats)
        << "threads=" << threads << " changed ProbeStats";
    EXPECT_EQ(rng_after, ref_rng_after);
  }

  // Shared pool variant.
  util::ThreadPool pool(8);
  ProbeEngineConfig pc;
  pc.common.threads = 8;
  ProbeEngine engine(snap, pc, &pool);
  util::Rng rng(5);
  EXPECT_EQ(probe_fingerprints(engine.make_probes(cover, rng)), ref_fp);
  EXPECT_TRUE(engine.stats() == ref_stats);
}

TEST(ParallelDeterminism, SnapshotLegalClosureIsStableUnderConcurrentAccess) {
  const flow::RuleSet rs = table2_sized_ruleset();
  const RuleGraph graph(rs);
  const AnalysisSnapshot snap(graph);
  // First access may race from many workers; all must observe one closure.
  util::ThreadPool pool(8);
  std::vector<const std::vector<std::vector<VertexId>>*> seen(16);
  util::parallel_for(&pool, seen.size(),
                     [&](std::size_t i) { seen[i] = &snap.legal_closure(); });
  for (const auto* p : seen) EXPECT_EQ(p, seen[0]);
  EXPECT_EQ(snap.legal_closure().size(),
            static_cast<std::size_t>(snap.vertex_count()));
}

// --- End-to-end DetectionReport determinism (ISSUE 4 acceptance) ---------

flow::RuleSet report_sized_ruleset() {
  topo::GeneratorConfig tc;
  tc.node_count = 12;
  tc.link_count = 20;
  tc.seed = 9;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 900;
  sc.seed = 41;
  return flow::synthesize_ruleset(g, sc);
}

// Bit-exact fingerprint of everything a DetectionReport records. hexfloat
// keeps the doubles lossless, so any drift — even one ULP of simulated
// time — fails the comparison.
std::string report_fingerprint(const DetectionReport& r) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto s : r.flagged_switches) os << s << ",";
  os << "|" << r.detection_time_s << "|" << r.total_time_s << "|"
     << r.probes_sent << "|" << r.retries_sent << "|" << r.retry_recoveries
     << "|" << r.rounds << "\n";
  for (const auto& rec : r.round_log) {
    os << rec.round << ":" << rec.start_s << ":" << rec.end_s << ":"
       << rec.probes << ":" << rec.failures << ":" << rec.retries << ":"
       << rec.recovered << ":";
    for (const auto s : rec.newly_flagged) os << s << ",";
    os << "\n";
  }
  return os.str();
}

struct ReportRunOptions {
  int threads = 1;
  bool randomized = false;
  int confirm_retries = 0;
  bool adaptive_timeout = false;
  // When set, installs an explicit (possibly all-zero) channel model.
  const dataplane::ChannelModelConfig* channel = nullptr;
};

DetectionReport run_report(const flow::RuleSet& rs,
                           const ReportRunOptions& opt) {
  const RuleGraph graph(rs);
  const AnalysisSnapshot snap(graph);
  sim::EventLoop loop;
  dataplane::NetworkConfig nc;
  if (opt.channel) nc.channel = *opt.channel;
  dataplane::Network net(rs, loop, nc);
  controller::Controller ctrl(rs, net);
  util::Rng rng(17);
  plan_basic_faults(graph, 2, FaultMix{}, rng, &net.faults());
  LocalizerConfig lc;
  lc.common.threads = opt.threads;
  lc.common.randomized = opt.randomized;
  lc.max_rounds = 24;
  // Wall-clock generation charging is real-time noise by design; exact
  // report equality requires it off.
  lc.charge_generation_time = false;
  lc.confirm_retries = opt.confirm_retries;
  lc.adaptive_timeout = opt.adaptive_timeout;
  FaultLocalizer loc(snap, ctrl, loop, lc);
  return loc.run();
}

TEST(ParallelDeterminism, DetectionReportIdenticalAcrossThreadCounts) {
  const flow::RuleSet rs = report_sized_ruleset();
  for (const bool randomized : {false, true}) {
    ReportRunOptions opt;
    opt.randomized = randomized;
    opt.threads = 1;
    const std::string ref = report_fingerprint(run_report(rs, opt));
    opt.threads = 4;
    EXPECT_EQ(report_fingerprint(run_report(rs, opt)), ref)
        << "threads=4 changed the report (randomized=" << randomized << ")";
  }
}

// --- Monitor churn-round determinism (ISSUE 5 acceptance) ----------------

// Bit-exact fingerprint of a whole monitor run: every round record, the
// cumulative report, churn/repair counters, and the live probe set.
std::string monitor_fingerprint(const monitor::Monitor& mon) {
  std::ostringstream os;
  os << std::hexfloat;
  const monitor::MonitorReport& rep = mon.report();
  for (const auto s : rep.flagged_switches) os << s << ",";
  os << "|" << rep.rounds << "|" << rep.probes_sent << "|" << rep.failures
     << "\n";
  for (const monitor::MonitorRound& r : rep.round_log) {
    os << r.index << ":" << r.epoch << ":" << r.start_s << ":" << r.end_s
       << ":" << r.probes_sent << ":" << r.failures << ":"
       << r.localizer_rounds << ":";
    for (const auto s : r.newly_flagged) os << s << ",";
    os << "\n";
  }
  const monitor::ChurnStats& cs = mon.churn_stats();
  os << cs.batches << "|" << cs.installs << "|" << cs.removals << "|"
     << cs.probes_kept << "|" << cs.probes_regenerated << "|"
     << cs.probes_retired << "\n";
  for (const std::string& fp : probe_fingerprints(mon.probes())) {
    os << fp << "\n";
  }
  return os.str();
}

// One scripted monitor lifetime: clean round, churn batch (installs and
// removals), round against the new epoch, a drop fault, localizing round.
std::string run_monitor_scripted(const flow::RuleSet& pristine, int threads) {
  flow::RuleSet rules = pristine;
  flow::SynthesizerConfig spare_sc;
  spare_sc.target_entry_count = 60;
  spare_sc.seed = 97;
  const flow::RuleSet spare =
      flow::synthesize_ruleset(rules.topology(), spare_sc);
  sim::EventLoop loop;
  dataplane::Network net(rules, loop);
  controller::Controller ctrl(rules, net);
  monitor::MonitorConfig mc;
  mc.common.threads = threads;
  mc.localizer.charge_generation_time = false;
  monitor::Monitor mon(rules, ctrl, loop, mc);

  mon.run_round();
  for (std::size_t i = 0; i < 4; ++i) {
    flow::FlowEntry e = spare.entry(static_cast<flow::EntryId>(i));
    e.id = -1;
    mon.enqueue(monitor::ChurnOp::install(std::move(e)));
  }
  mon.enqueue(monitor::ChurnOp::remove(7));
  mon.enqueue(monitor::ChurnOp::remove(23));
  mon.run_round();

  util::Rng rng(17);
  const auto snap = mon.snapshot();
  const auto faulty = choose_faulty_entries(snap->graph(), 1, rng);
  FaultMix mix;
  mix.misdirect = false;
  mix.modify = false;
  net.faults().add_fault(faulty[0],
                         make_fault(snap->graph(), faulty[0], mix, rng));
  mon.run_round();
  mon.run_round();
  return monitor_fingerprint(mon);
}

TEST(ParallelDeterminism, MonitorChurnRoundsIdenticalAcrossThreadCounts) {
  const flow::RuleSet rs = report_sized_ruleset();
  const std::string ref = run_monitor_scripted(rs, 1);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(run_monitor_scripted(rs, threads), ref)
        << "threads=" << threads << " changed the monitor run";
  }
}

TEST(ParallelDeterminism, ZeroRateChannelModelKeepsReportsBitIdentical) {
  const flow::RuleSet rs = report_sized_ruleset();
  ReportRunOptions opt;
  const std::string ref = report_fingerprint(run_report(rs, opt));
  // An explicit all-zero channel model (with a nonzero seed) must take the
  // noiseless fast path: zero RNG draws, so the report stays bit-identical
  // to a network that predates the channel model.
  dataplane::ChannelModelConfig cm;
  cm.seed = 0xDEADBEEFu;
  opt.channel = &cm;
  for (const int threads : {1, 4}) {
    opt.threads = threads;
    EXPECT_EQ(report_fingerprint(run_report(rs, opt)), ref)
        << "zero-rate channel model perturbed the report at threads="
        << threads;
  }
}

TEST(ParallelDeterminism, LossToleranceConfigIsThreadInvariant) {
  // Retries + adaptive timeouts enabled: genuinely faulty paths do trigger
  // confirmation re-sends, and the grace periods derive from observed RTTs.
  // Both mechanisms must stay bit-identical across thread counts.
  const flow::RuleSet rs = report_sized_ruleset();
  ReportRunOptions opt;
  opt.confirm_retries = 2;
  opt.adaptive_timeout = true;
  opt.threads = 1;
  const std::string ref = report_fingerprint(run_report(rs, opt));
  opt.threads = 4;
  EXPECT_EQ(report_fingerprint(run_report(rs, opt)), ref);
}

}  // namespace
}  // namespace sdnprobe::core
