// Tests for the utility layer: RNG determinism and distribution sanity,
// streaming statistics, quantiles, confusion-count arithmetic, and log-level
// parsing (the SDNPROBE_LOG environment override) plus the line-prefix
// format (timestamp + thread ordinal).
#include <gtest/gtest.h>

#include <regex>
#include <set>
#include <thread>

#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sdnprobe::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> buckets(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++buckets[static_cast<std::size_t>(v)];
  }
  for (const int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 100);  // within 10% relative
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, DeriveIsDeterministicAndStreamSeparated) {
  // Same (seed, stream) -> same derived seed; different streams (and
  // different base seeds) must decorrelate, since parallel MLPC restarts and
  // per-path probe sampling each draw from their own derived stream.
  EXPECT_EQ(Rng::derive(42, 0), Rng::derive(42, 0));
  EXPECT_NE(Rng::derive(42, 0), Rng::derive(42, 1));
  EXPECT_NE(Rng::derive(42, 0), Rng::derive(43, 0));
  // Streams must not collide for a dense range (restart/path indices).
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 1000; ++s) seen.insert(Rng::derive(7, s));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng parent(1);
  Rng child = parent.fork();
  // The child's stream should not replicate the parent's next outputs.
  bool differs = false;
  for (int i = 0; i < 16; ++i) differs |= (parent.next() != child.next());
  EXPECT_TRUE(differs);
}

TEST(Accumulator, MeanVarianceMinMax) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(SamplesTest, QuantilesInterpolate) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.9), 90.1, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

// Regression: every Samples statistic is defined (0.0) on an empty set, the
// same convention as Accumulator — telemetry histograms export quantiles
// unconditionally and must not hit UB before the first record.
TEST(SamplesTest, EmptySetStatisticsAreZero) {
  const Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SamplesTest, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);  // forces a sort
  s.add(0.5);                      // invalidates sortedness
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
}

TEST(ConfusionCountsTest, RatesAndAccumulation) {
  ConfusionCounts a{/*tp=*/3, /*fp=*/1, /*tn=*/5, /*fn=*/1};
  EXPECT_DOUBLE_EQ(a.false_positive_rate(), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(a.false_negative_rate(), 0.25);
  EXPECT_DOUBLE_EQ(a.precision(), 0.75);
  EXPECT_DOUBLE_EQ(a.recall(), 0.75);
  ConfusionCounts b{1, 0, 2, 0};
  a += b;
  EXPECT_EQ(a.true_positive, 4u);
  EXPECT_EQ(a.true_negative, 7u);
  // Degenerate denominators return 0 instead of NaN.
  const ConfusionCounts empty;
  EXPECT_DOUBLE_EQ(empty.false_positive_rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.false_negative_rate(), 0.0);
}

TEST(Logging, ParseLogLevelRecognizesAllNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST(Logging, ParseLogLevelIsCaseInsensitive) {
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("OFF"), LogLevel::kOff);
}

TEST(Logging, ParseLogLevelRejectsUnknownNames) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("warn "), std::nullopt);
  EXPECT_EQ(parse_log_level("2"), std::nullopt);
}

TEST(Logging, PrefixCarriesLevelTimestampThreadAndLocation) {
  const std::string p = format_log_prefix(LogLevel::kWarn, "dir/file.cc", 42);
  // "[WARN  12:34:56.789 t01] file.cc:42: " — wall-clock time of day with
  // milliseconds plus the per-thread ordinal shared with trace spans.
  const std::regex re(
      R"(\[WARN  \d{2}:\d{2}:\d{2}\.\d{3} t\d{2,}\] file\.cc:42: )");
  EXPECT_TRUE(std::regex_match(p, re)) << "prefix was: " << p;
}

TEST(Logging, ThreadOrdinalIsStablePerThreadAndUniqueAcrossThreads) {
  const std::uint64_t mine = thread_ordinal();
  EXPECT_GE(mine, 1u);
  EXPECT_EQ(thread_ordinal(), mine);  // stable on repeated calls
  std::uint64_t other = 0;
  std::thread t([&] { other = thread_ordinal(); });
  t.join();
  EXPECT_NE(other, mine);
  EXPECT_EQ(thread_ordinal(), mine);  // unchanged by other threads
}

TEST(Logging, SetLogThresholdRoundTrips) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(before);
  EXPECT_EQ(log_threshold(), before);
}

}  // namespace
}  // namespace sdnprobe::util
