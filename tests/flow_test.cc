// Tests for flow tables, rulesets, the K-path synthesizer, and the campus
// ruleset generator. The generator tests double as linter self-checks: the
// rulesets they produce must stay free of error-severity diagnostics.
#include <gtest/gtest.h>

#include "analysis/linter.h"
#include "flow/campus.h"
#include "flow/synthesizer.h"
#include "topo/generator.h"

namespace sdnprobe::flow {
namespace {

hsa::TernaryString ts(const char* s) {
  return *hsa::TernaryString::parse(s);
}

TEST(FlowTable, PriorityOrderedLookup) {
  FlowTable t;
  FlowEntry low;
  low.id = 1;
  low.priority = 10;
  low.match = ts("001xxxxx");
  FlowEntry high;
  high.id = 2;
  high.priority = 20;
  high.match = ts("00100xxx");
  t.insert(low);
  t.insert(high);
  // Inside the overlap, the higher priority wins.
  const FlowEntry* hit = t.lookup(ts("00100101"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 2);
  // Outside it, the wider low-priority entry matches.
  hit = t.lookup(ts("00111111"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 1);
  EXPECT_EQ(t.lookup(ts("11111111")), nullptr);
}

TEST(FlowTable, InputSpaceSubtractsOverlaps) {
  FlowTable t;
  FlowEntry low;
  low.id = 1;
  low.priority = 10;
  low.match = ts("001xxxxx");
  FlowEntry high;
  high.id = 2;
  high.priority = 20;
  high.match = ts("00100xxx");
  t.insert(low);
  t.insert(high);
  const hsa::HeaderSpace in = t.input_space(1);
  EXPECT_FALSE(in.contains(ts("00100111")));
  EXPECT_TRUE(in.contains(ts("00110000")));
  // The higher-priority entry keeps its full match as input.
  EXPECT_TRUE(t.input_space(2).contains(ts("00100111")));
}

TEST(FlowTable, OverlappingAboveReturnsHigherPriorityOverlapsOnly) {
  FlowTable t;
  FlowEntry wide;
  wide.id = 1;
  wide.priority = 10;
  wide.match = ts("001xxxxx");
  FlowEntry above;
  above.id = 2;
  above.priority = 20;
  above.match = ts("00100xxx");
  FlowEntry disjoint;
  disjoint.id = 3;
  disjoint.priority = 30;
  disjoint.match = ts("111xxxxx");
  t.insert(wide);
  t.insert(above);
  t.insert(disjoint);

  // The wide entry is overlapped from above by `above` only: `disjoint` has
  // higher priority but no shared packet.
  const auto over_wide = t.overlapping_above(wide);
  ASSERT_EQ(over_wide.size(), 1u);
  EXPECT_EQ(over_wide[0]->id, 2);

  // The top-priority entries see nothing above them.
  EXPECT_TRUE(t.overlapping_above(above).empty());
  EXPECT_TRUE(t.overlapping_above(disjoint).empty());
}

TEST(FlowTable, OverlappingAboveIgnoresEqualPriority) {
  FlowTable t;
  FlowEntry a;
  a.id = 1;
  a.priority = 10;
  a.match = ts("00xxxxxx");
  FlowEntry b;
  b.id = 2;
  b.priority = 10;
  b.match = ts("000xxxxx");
  t.insert(a);
  t.insert(b);
  // Equal priority is not "strictly higher": neither shadows the other.
  EXPECT_TRUE(t.overlapping_above(a).empty());
  EXPECT_TRUE(t.overlapping_above(b).empty());
}

TEST(FlowTable, EraseRemovesEntry) {
  FlowTable t;
  FlowEntry e;
  e.id = 7;
  e.priority = 5;
  e.match = ts("xxxxxxxx");
  t.insert(e);
  EXPECT_TRUE(t.erase(7));
  EXPECT_FALSE(t.erase(7));
  EXPECT_EQ(t.lookup(ts("00000000")), nullptr);
}

TEST(PortMapTest, RoundTripPorts) {
  topo::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const PortMap pm(g);
  const auto p01 = pm.port_to(0, 1);
  ASSERT_TRUE(p01.has_value());
  EXPECT_EQ(pm.peer_of(0, *p01), 1);
  EXPECT_FALSE(pm.port_to(0, 2).has_value());
  // Host port is one past the neighbor ports.
  EXPECT_FALSE(pm.peer_of(1, pm.host_port(1)).has_value());
}

class SynthesizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesizerProperty, WellFormedRuleset) {
  topo::GeneratorConfig tc;
  tc.node_count = 14;
  tc.link_count = 24;
  tc.seed = GetParam();
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  SynthesizerConfig sc;
  sc.target_entry_count = 1500;
  sc.seed = GetParam() * 3 + 1;
  const RuleSet rs = synthesize_ruleset(g, sc);

  // Entry count lands near the target (within one path length).
  EXPECT_GE(rs.entry_count(), 1500u);
  EXPECT_LE(rs.entry_count(), 1500u + 32u);

  // Every output action refers to a real port (neighbor or host).
  for (const auto& e : rs.entries()) {
    ASSERT_EQ(e.action.type, ActionType::kOutput) << e.to_string();
    const auto peer = rs.ports().peer_of(e.switch_id, e.action.out_port);
    const bool is_host_port =
        e.action.out_port == rs.ports().host_port(e.switch_id);
    EXPECT_TRUE(peer.has_value() || is_host_port) << e.to_string();
  }

  // Linter self-check: synthesized rulesets carry no error-severity defects.
  // Warnings (fully shadowed entries from prefix aggregation + route
  // diversity) are expected; every warning must be a shadowed-entry finding,
  // nothing else.
  const analysis::LintReport report = analysis::Linter().run(rs);
  EXPECT_EQ(report.count(analysis::Severity::kError), 0u)
      << report.to_string();
  EXPECT_EQ(report.count(analysis::Severity::kWarning),
            report.count(analysis::CheckId::kShadowedEntry))
      << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesizerProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Synthesizer, AggregatesGiveEverySwitchADefaultRoute) {
  topo::GeneratorConfig tc;
  tc.node_count = 8;
  tc.link_count = 12;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  SynthesizerConfig sc;
  sc.target_entry_count = 200;
  sc.aggregates = true;
  const RuleSet rs = synthesize_ruleset(g, sc);
  // For each destination d and switch u, some entry at u matches d-traffic.
  for (SwitchId d = 0; d < 8; ++d) {
    for (SwitchId u = 0; u < 8; ++u) {
      hsa::TernaryString probe = hsa::TernaryString::wildcard(32);
      for (int k = 0; k < 8; ++k) {
        probe.set(k, (d >> (7 - k)) & 1 ? hsa::Trit::kOne : hsa::Trit::kZero);
      }
      for (int k = 8; k < 32; ++k) probe.set(k, hsa::Trit::kZero);
      EXPECT_NE(rs.table(u, 0).lookup(probe), nullptr)
          << "switch " << u << " dst " << d;
    }
  }
}

TEST(Campus, MatchesPaperShape) {
  CampusConfig cc;  // defaults = paper values
  const RuleSet rs = make_campus_ruleset(cc);
  EXPECT_EQ(rs.table(0, 0).size(), 550u);
  EXPECT_EQ(rs.table(1, 0).size(), 579u);
  EXPECT_EQ(rs.max_overlap_chain(), 65);
  // Every entry is reachable by some packet (non-empty input space).
  for (const auto& e : rs.entries()) {
    EXPECT_FALSE(rs.input_space(e.id).is_empty()) << e.to_string();
  }

  // Linter self-check: the campus generator builds overlap chains, never
  // full shadows, so the ruleset lints completely clean — zero diagnostics
  // at any severity.
  const analysis::LintReport report = analysis::Linter().run(rs);
  EXPECT_EQ(report.count(analysis::Severity::kError), 0u)
      << report.to_string();
  EXPECT_EQ(report.size(), 0u) << report.to_string();
}

TEST(Campus, ConfigurableSizes) {
  CampusConfig cc;
  cc.entries_table0 = 40;
  cc.entries_table1 = 55;
  cc.max_overlap_chain = 12;
  cc.header_width = 32;
  const RuleSet rs = make_campus_ruleset(cc);
  EXPECT_EQ(rs.table(0, 0).size(), 40u);
  EXPECT_EQ(rs.table(1, 0).size(), 55u);
  EXPECT_EQ(rs.max_overlap_chain(), 12);
}

}  // namespace
}  // namespace sdnprobe::flow
