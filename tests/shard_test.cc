// Behavioral tests for the sharded analysis subsystem (src/shard/,
// DESIGN.md §17): partition soundness under fuzz, bit-identity of the
// merged probe set with the unsharded pipeline at shard_count=1,
// thread-count independence at every shard count, detection equivalence of
// sharded covers, and sharded monitor churn repair.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "core/analysis_snapshot.h"
#include "core/mlpc.h"
#include "core/probe_engine.h"
#include "core/scenario.h"
#include "dataplane/network.h"
#include "flow/synthesizer.h"
#include "monitor/monitor.h"
#include "shard/partition.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_localizer.h"
#include "shard/sharded_snapshot.h"
#include "topo/generator.h"

namespace sdnprobe::shard {
namespace {

struct Fixture {
  flow::RuleSet rules;
  std::unique_ptr<core::RuleGraph> graph;
  std::unique_ptr<core::AnalysisSnapshot> snap;
  sim::EventLoop loop;
  std::unique_ptr<dataplane::Network> net;
  std::unique_ptr<controller::Controller> ctrl;

  explicit Fixture(std::uint64_t seed = 4, long entries = 1000,
                   int switches = 14) {
    topo::GeneratorConfig tc;
    tc.node_count = switches;
    tc.link_count = switches + 10;
    tc.seed = seed;
    const topo::Graph g = topo::make_rocketfuel_like(tc);
    flow::SynthesizerConfig sc;
    sc.target_entry_count = entries;
    sc.seed = seed + 1;
    rules = flow::synthesize_ruleset(g, sc);
    graph = std::make_unique<core::RuleGraph>(rules);
    snap = std::make_unique<core::AnalysisSnapshot>(*graph);
    net = std::make_unique<dataplane::Network>(rules, loop);
    ctrl = std::make_unique<controller::Controller>(rules, *net);
  }
};

std::string space_string(const hsa::HeaderSpace& s) {
  std::string out;
  for (const auto& cube : s.cubes()) {
    out += cube.to_string();
    out += '|';
  }
  return out;
}

std::vector<std::string> render_probes(const std::vector<core::Probe>& ps) {
  std::vector<std::string> out;
  out.reserve(ps.size());
  for (const auto& p : ps) {
    std::string r = p.header.to_string() + "/" + p.expected_return.to_string();
    for (const auto v : p.path) r += ":" + std::to_string(v);
    out.push_back(std::move(r));
  }
  return out;
}

TEST(Partition, FuzzEveryRuleExactlyOnceAndBoundariesTwice) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    Fixture fx(seed, 800);
    for (const int k : {2, 3, 5, 8}) {
      const ShardLayout layout =
          make_layout(*fx.snap, ShardConfig{k, seed});
      ASSERT_EQ(layout.shard_count, k);
      ASSERT_EQ(layout.shard_of_switch.size(),
                static_cast<std::size_t>(fx.rules.switch_count()));
      for (const int s : layout.shard_of_switch) {
        EXPECT_GE(s, 0);
        EXPECT_LT(s, k);
      }

      const ShardedSnapshot sliced(*fx.snap, layout);
      // Every full-graph vertex (= rule) lands in exactly one shard.
      std::vector<int> times_seen(
          static_cast<std::size_t>(fx.snap->vertex_count()), 0);
      for (int s = 0; s < k; ++s) {
        for (core::VertexId v = 0; v < sliced.shard(s).vertex_count(); ++v) {
          const core::VertexId g = sliced.to_global(s, v);
          ASSERT_GE(g, 0);
          ASSERT_LT(g, fx.snap->vertex_count());
          ++times_seen[static_cast<std::size_t>(g)];
          EXPECT_EQ(layout.shard_of(
                        fx.rules.entry(fx.snap->entry_of(g)).switch_id),
                    s);
        }
      }
      for (const int t : times_seen) ASSERT_EQ(t, 1);

      // The boundary table is exactly the full graph's cross-shard edges.
      std::set<std::pair<core::VertexId, core::VertexId>> expected;
      for (core::VertexId v = 0; v < fx.snap->vertex_count(); ++v) {
        if (!fx.snap->is_active(v)) continue;
        const int sv = layout.shard_of(
            fx.rules.entry(fx.snap->entry_of(v)).switch_id);
        for (const core::VertexId w : fx.snap->successors(v)) {
          const int sw = layout.shard_of(
              fx.rules.entry(fx.snap->entry_of(w)).switch_id);
          if (sv != sw) expected.insert({v, w});
        }
      }
      std::set<std::pair<core::VertexId, core::VertexId>> got;
      for (const auto& e : sliced.boundary_edges()) {
        EXPECT_NE(sliced.shard_of_vertex(e.from), sliced.shard_of_vertex(e.to));
        got.insert({e.from, e.to});
      }
      EXPECT_EQ(got, expected);

      // Each boundary edge appears in exactly two shards' tables: its
      // source's shard and its target's shard.
      std::vector<int> tables_holding(sliced.boundary_edges().size(), 0);
      for (int s = 0; s < k; ++s) {
        for (const std::size_t idx : sliced.boundary_of_shard(s)) {
          ASSERT_LT(idx, sliced.boundary_edges().size());
          const auto& e = sliced.boundary_edges()[idx];
          EXPECT_TRUE(sliced.shard_of_vertex(e.from) == s ||
                      sliced.shard_of_vertex(e.to) == s);
          ++tables_holding[idx];
        }
      }
      for (const int t : tables_holding) EXPECT_EQ(t, 2);
    }
  }
}

TEST(Partition, SlicedSpacesMatchFullGraph) {
  // Per-entry input spaces depend only on same-switch same-table priority
  // structure, so slicing must not change any vertex's in/out space.
  for (const std::uint64_t seed : {7u, 8u}) {
    Fixture fx(seed, 700);
    const ShardLayout layout = make_layout(*fx.snap, ShardConfig{4, seed});
    const ShardedSnapshot sliced(*fx.snap, layout);
    for (int s = 0; s < sliced.shard_count(); ++s) {
      const auto& shard = sliced.shard(s);
      for (core::VertexId v = 0; v < shard.vertex_count(); ++v) {
        const core::VertexId g = sliced.to_global(s, v);
        ASSERT_EQ(space_string(shard.in_space(v)),
                  space_string(fx.snap->in_space(g)));
        ASSERT_EQ(space_string(shard.out_space(v)),
                  space_string(fx.snap->out_space(g)));
        ASSERT_EQ(shard.is_active(v), fx.snap->is_active(g));
      }
    }
  }
}

TEST(ShardedEngine, ShardCountOneIsBitIdenticalToUnshardedPipeline) {
  Fixture fx(9, 1200);
  const std::uint64_t seed = 21;

  // Unsharded reference: MLPC + ProbeEngine exactly as the one-shot
  // pipeline runs them.
  core::MlpcConfig mc;
  mc.common.seed = seed;
  const core::Cover cover = core::MlpcSolver(mc).solve(*fx.snap);
  core::ProbeEngineConfig pc;
  core::ProbeEngine engine(*fx.snap, pc);
  util::Rng ref_rng(seed);
  const auto reference = engine.make_probes(cover, ref_rng);

  const ShardLayout layout = make_layout(*fx.snap, ShardConfig{1, seed});
  const ShardedSnapshot sliced(*fx.snap, layout);
  ShardedEngineConfig ec;
  ec.common.seed = seed;
  ShardedProbeEngine sharded(sliced, ec);
  util::Rng rng(seed);
  const ProbeSet ps = sharded.generate(rng);

  EXPECT_EQ(ps.boundary_probe_count, 0u);
  EXPECT_EQ(ps.cover_probe_count, reference.size());
  EXPECT_EQ(render_probes(ps.probes), render_probes(reference));
  EXPECT_EQ(ps.stats, engine.stats());
  // Both consumed exactly one draw from the caller's stream.
  EXPECT_EQ(rng.next(), ref_rng.next());
}

TEST(ShardedEngine, ThreadCountNeverChangesTheMergedProbeSet) {
  Fixture fx(5, 1000);
  for (const int k : {1, 2, 8}) {
    std::vector<std::string> reference;
    ProbeSet first;
    for (const int threads : {1, 8}) {
      const ShardLayout layout = make_layout(*fx.snap, ShardConfig{k, 3});
      const ShardedSnapshot sliced(*fx.snap, layout);
      ShardedEngineConfig ec;
      ec.common.seed = 17;
      ec.common.threads = threads;
      ShardedProbeEngine engine(sliced, ec);
      util::Rng rng(17);
      const ProbeSet ps = engine.generate(rng);
      const auto rendered = render_probes(ps.probes);
      if (reference.empty()) {
        reference = rendered;
        first = ps;
      } else {
        EXPECT_EQ(rendered, reference) << "k=" << k << " threads=" << threads;
        EXPECT_EQ(ps.cover_probe_count, first.cover_probe_count);
        EXPECT_EQ(ps.boundary_probe_count, first.boundary_probe_count);
        EXPECT_EQ(ps.shard_cover_sizes, first.shard_cover_sizes);
      }
    }
  }
}

TEST(ShardedEngine, EveryShardCountCoversAllActiveVertices) {
  Fixture fx(6, 1000);
  for (const int k : {1, 2, 8}) {
    const ShardLayout layout = make_layout(*fx.snap, ShardConfig{k, 6});
    const ShardedSnapshot sliced(*fx.snap, layout);
    ShardedEngineConfig ec;
    ec.common.seed = 6;
    ShardedProbeEngine engine(sliced, ec);
    util::Rng rng(6);
    const ProbeSet ps = engine.generate(rng);
    std::vector<std::uint8_t> covered(
        static_cast<std::size_t>(fx.snap->vertex_count()), 0);
    for (const auto& p : ps.probes) {
      for (const auto v : p.path) covered[static_cast<std::size_t>(v)] = 1;
    }
    for (core::VertexId v = 0; v < fx.snap->vertex_count(); ++v) {
      if (fx.snap->is_active(v)) {
        ASSERT_TRUE(covered[static_cast<std::size_t>(v)])
            << "k=" << k << " vertex " << v << " uncovered";
      }
    }
    // Probe ids are 1..n in canonical merged order.
    for (std::size_t i = 0; i < ps.probes.size(); ++i) {
      EXPECT_EQ(ps.probes[i].probe_id, static_cast<std::uint64_t>(i + 1));
    }
  }
}

TEST(ShardedLocalizer, FlaggedSetIdenticalAcrossShardCounts) {
  // Sharding changes how the cover is produced, never what the localizer
  // concludes. A persistent drop fails every covering probe regardless of
  // the concrete header, so the flagged set is a sound cross-cover
  // invariant (a modify fault's visibility can depend on the injected
  // header, which legitimately differs between covers).
  std::vector<std::vector<flow::SwitchId>> flagged_by_k;
  for (const int k : {1, 2, 8}) {
    Fixture fx(12, 900);
    util::Rng rng(3);
    const auto ids = core::choose_faulty_entries(*fx.graph, 1, rng);
    fx.net->faults().add_fault(ids[0], dataplane::FaultSpec::Drop());
    const ShardLayout layout = make_layout(*fx.snap, ShardConfig{k, 12});
    const ShardedSnapshot sliced(*fx.snap, layout);
    ShardedLocalizerConfig lc;
    lc.engine.common.seed = 12;
    ShardedLocalizer loc(sliced, *fx.ctrl, fx.loop, lc);
    const auto rep = loc.run();
    ASSERT_EQ(rep.flagged_switches.size(), 1u) << "k=" << k;
    EXPECT_EQ(rep.flagged_switches[0], fx.rules.entry(ids[0]).switch_id);
    flagged_by_k.push_back(rep.flagged_switches);
  }
  EXPECT_EQ(flagged_by_k[0], flagged_by_k[1]);
  EXPECT_EQ(flagged_by_k[0], flagged_by_k[2]);
}

TEST(ShardedMonitor, ChurnRepairIsDeterministicAndKeepsFullCoverage) {
  monitor::MonitorConfig config;
  config.shard_count = 2;

  auto make_fixture = [&config]() {
    struct MonFx {
      flow::RuleSet rules;
      flow::RuleSet spare;
      sim::EventLoop loop;
      std::unique_ptr<dataplane::Network> net;
      std::unique_ptr<controller::Controller> ctrl;
      std::unique_ptr<monitor::Monitor> mon;
    };
    auto fx = std::make_unique<MonFx>();
    topo::GeneratorConfig tc;
    tc.node_count = 12;
    tc.link_count = 20;
    tc.seed = 11;
    const topo::Graph g = topo::make_rocketfuel_like(tc);
    flow::SynthesizerConfig sc;
    sc.target_entry_count = 600;
    sc.seed = 12;
    fx->rules = flow::synthesize_ruleset(g, sc);
    flow::SynthesizerConfig spare_sc = sc;
    spare_sc.target_entry_count = 150;
    spare_sc.seed = 13;
    fx->spare = flow::synthesize_ruleset(g, spare_sc);
    fx->net = std::make_unique<dataplane::Network>(fx->rules, fx->loop);
    fx->ctrl =
        std::make_unique<controller::Controller>(fx->rules, *fx->net);
    fx->mon = std::make_unique<monitor::Monitor>(fx->rules, *fx->ctrl,
                                                 fx->loop, config);
    return fx;
  };

  auto a = make_fixture();
  auto b = make_fixture();
  EXPECT_DOUBLE_EQ(a->mon->status().coverage_fraction, 1.0);
  EXPECT_EQ(render_probes(a->mon->probes()), render_probes(b->mon->probes()));

  for (auto* fx : {a.get(), b.get()}) {
    for (std::size_t i = 0; i < 6; ++i) {
      flow::FlowEntry e = fx->spare.entry(static_cast<flow::EntryId>(i));
      e.id = -1;
      fx->mon->enqueue(monitor::ChurnOp::install(std::move(e)));
      fx->mon->enqueue(
          monitor::ChurnOp::remove(static_cast<flow::EntryId>(20 + 3 * i)));
    }
    fx->mon->drain_churn();
  }
  EXPECT_EQ(render_probes(a->mon->probes()), render_probes(b->mon->probes()));
  EXPECT_DOUBLE_EQ(a->mon->status().coverage_fraction, 1.0)
      << "sharded repair must re-cover every active vertex";
  EXPECT_GT(a->mon->churn_stats().probes_kept, 0u)
      << "sharded repair must keep untouched shards' probes";
}

}  // namespace
}  // namespace sdnprobe::shard
