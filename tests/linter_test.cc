// Tests for analysis::Linter: each seeded defect class is flagged with the
// right check id and severity, near-miss structures are NOT flagged
// (partially shadowed entries, reachable tables), clean rulesets produce no
// error diagnostics, and strict mode refuses to construct a snapshot over a
// broken ruleset.
#include <gtest/gtest.h>

#include "analysis/linter.h"
#include "flow/campus.h"
#include "topo/graph.h"

namespace sdnprobe::analysis {
namespace {

hsa::TernaryString ts(const char* s) {
  return *hsa::TernaryString::parse(s);
}

// A 2-switch line topology; width-8 headers.
struct Fixture {
  Fixture() : rules(make_graph(), 8) {}

  static topo::Graph make_graph() {
    topo::Graph g(2);
    g.add_edge(0, 1);
    return g;
  }

  flow::EntryId add(flow::SwitchId sw, flow::TableId table, int priority,
                    hsa::TernaryString match, flow::Action action,
                    hsa::TernaryString set_field = hsa::TernaryString()) {
    flow::FlowEntry e;
    e.switch_id = sw;
    e.table_id = table;
    e.priority = priority;
    e.match = std::move(match);
    e.set_field = std::move(set_field);
    e.action = action;
    return rules.add_entry(std::move(e));
  }

  flow::PortId port01() const { return *rules.ports().port_to(0, 1); }
  flow::PortId host(flow::SwitchId sw) const {
    return rules.ports().host_port(sw);
  }

  flow::RuleSet rules;
};

TEST(Linter, CleanRulesetHasNoDiagnostics) {
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(f.port01()));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));
  const LintReport report = Linter().run(f.rules);
  EXPECT_EQ(report.size(), 0u) << report.to_string();
}

TEST(Linter, FullyShadowedEntryIsFlaggedAsWarning) {
  Fixture f;
  const auto cover =
      f.add(0, 0, 20, ts("00xxxxxx"), flow::Action::output(f.port01()));
  const auto shadowed =
      f.add(0, 0, 10, ts("0000xxxx"), flow::Action::output(f.port01()));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));

  const LintReport report = Linter().run(f.rules);
  ASSERT_EQ(report.count(CheckId::kShadowedEntry), 1u) << report.to_string();
  const Diagnostic* d = report.by_check(CheckId::kShadowedEntry)[0];
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location.entry_id, shadowed);
  // The covering entry is named in the evidence payload.
  ASSERT_FALSE(d->payload.empty());
  EXPECT_EQ(d->payload[0].first, "covered-by");
  EXPECT_EQ(d->payload[0].second, std::to_string(cover));
}

TEST(Linter, PartiallyShadowedEntryIsNotFlagged) {
  Fixture f;
  f.add(0, 0, 20, ts("0000xxxx"), flow::Action::output(f.port01()));
  // Lower priority but wider: part of its match survives the subtraction.
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(f.port01()));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));

  const LintReport report = Linter().run(f.rules);
  EXPECT_EQ(report.count(CheckId::kShadowedEntry), 0u) << report.to_string();
}

TEST(Linter, GotoTableCycleIsError) {
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::goto_table(1));
  f.add(0, 1, 10, ts("00xxxxxx"), flow::Action::goto_table(0));
  const LintReport report = Linter().run(f.rules);
  ASSERT_GE(report.count(CheckId::kGotoCycle), 1u) << report.to_string();
  EXPECT_EQ(report.by_check(CheckId::kGotoCycle)[0]->severity,
            Severity::kError);
}

TEST(Linter, DanglingOutputPortIsError) {
  Fixture f;
  // Switch 0 has one neighbor: valid ports are 0 (to sw1) and 1 (host).
  const auto bad =
      f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(flow::PortId{5}));
  const LintReport report = Linter().run(f.rules);
  ASSERT_EQ(report.count(CheckId::kDanglingOutput), 1u) << report.to_string();
  const Diagnostic* d = report.by_check(CheckId::kDanglingOutput)[0];
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.entry_id, bad);
}

TEST(Linter, DanglingGotoIsError) {
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::goto_table(7));
  const LintReport report = Linter().run(f.rules);
  ASSERT_EQ(report.count(CheckId::kDanglingGoto), 1u) << report.to_string();
  EXPECT_EQ(report.by_check(CheckId::kDanglingGoto)[0]->severity,
            Severity::kError);
}

TEST(Linter, EmptyMatchAfterSetFieldIsError) {
  Fixture f;
  // sw0 rewrites into 111..., but sw1 only matches 00...: nothing the entry
  // emits can be handled downstream.
  const auto bad = f.add(0, 0, 10, ts("10xxxxxx"),
                         flow::Action::output(f.port01()), ts("111xxxxx"));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));
  const LintReport report = Linter().run(f.rules);
  ASSERT_EQ(report.count(CheckId::kEmptyMatch), 1u) << report.to_string();
  const Diagnostic* d = report.by_check(CheckId::kEmptyMatch)[0];
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.entry_id, bad);
}

TEST(Linter, ForwardingIntoAMatchingPeerIsNotEmptyMatch) {
  Fixture f;
  f.add(0, 0, 10, ts("10xxxxxx"), flow::Action::output(f.port01()),
        ts("00xxxxxx"));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));
  const LintReport report = Linter().run(f.rules);
  EXPECT_EQ(report.count(CheckId::kEmptyMatch), 0u) << report.to_string();
}

TEST(Linter, UnreachableTableIsWarning) {
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(f.port01()));
  // Table 1 exists (non-empty) but no goto from table 0 reaches it.
  f.add(0, 1, 10, ts("01xxxxxx"), flow::Action::output(f.host(0)));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));
  const LintReport report = Linter().run(f.rules);
  ASSERT_EQ(report.count(CheckId::kUnreachableTable), 1u)
      << report.to_string();
  EXPECT_EQ(report.by_check(CheckId::kUnreachableTable)[0]->severity,
            Severity::kWarning);
}

TEST(Linter, DisconnectedTopologyIsWarning) {
  topo::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  flow::RuleSet rules(g, 8);
  const LintReport report = Linter().run(rules);
  EXPECT_EQ(report.count(CheckId::kTopologyDisconnected), 1u)
      << report.to_string();
  EXPECT_EQ(report.count(Severity::kError), 0u) << report.to_string();
}

TEST(Linter, SnapshotRunFindsRuleGraphCycle) {
  Fixture f;
  const flow::PortId p10 = *f.rules.ports().port_to(1, 0);
  f.add(0, 0, 10, ts("1100xxxx"), flow::Action::output(f.port01()));
  f.add(1, 0, 10, ts("1100xxxx"), flow::Action::output(p10));
  const core::AnalysisSnapshot snapshot =
      core::AnalysisSnapshot::build(f.rules);
  const LintReport report = Linter().run(snapshot);
  ASSERT_GE(report.count(CheckId::kRuleGraphCycle), 1u) << report.to_string();
  EXPECT_EQ(report.by_check(CheckId::kRuleGraphCycle)[0]->severity,
            Severity::kError);
}

TEST(Linter, SnapshotRunDischargesEdgesThroughSat) {
  // A clean forwarding chain: the SAT cross-check must agree with HSA on
  // every edge (no unsat-edge diagnostics), with no truncation at default
  // budget.
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(f.port01()));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));
  const core::AnalysisSnapshot snapshot =
      core::AnalysisSnapshot::build(f.rules);
  const LintReport report = Linter().run(snapshot);
  EXPECT_EQ(report.count(CheckId::kUnsatEdge), 0u) << report.to_string();
  EXPECT_EQ(report.count(Severity::kInfo), 0u) << report.to_string();
}

TEST(BuildCheckedSnapshot, StrictModeThrowsOnErrors) {
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(flow::PortId{9}));
  LintConfig strict;
  strict.strict = true;
  EXPECT_THROW(build_checked_snapshot(f.rules, strict), LintError);
}

TEST(BuildCheckedSnapshot, StrictModeErrorCarriesTheReport) {
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(flow::PortId{9}));
  LintConfig strict;
  strict.strict = true;
  try {
    build_checked_snapshot(f.rules, strict);
    FAIL() << "expected LintError";
  } catch (const LintError& e) {
    EXPECT_GE(e.report().count(CheckId::kDanglingOutput), 1u);
    EXPECT_NE(std::string(e.what()).find("dangling-output"),
              std::string::npos);
  }
}

TEST(BuildCheckedSnapshot, NonStrictReturnsSnapshotAndReport) {
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(flow::PortId{9}));
  LintReport report;
  const core::AnalysisSnapshot snapshot =
      build_checked_snapshot(f.rules, {}, &report);
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(snapshot.vertex_count(), 1);
}

TEST(BuildCheckedSnapshot, CleanCampusRulesetPassesStrict) {
  const flow::RuleSet rules = flow::make_campus_ruleset({});
  LintConfig strict;
  strict.strict = true;
  LintReport report;
  EXPECT_NO_THROW({
    const core::AnalysisSnapshot snapshot =
        build_checked_snapshot(rules, strict, &report);
    (void)snapshot;
  });
  EXPECT_EQ(report.count(Severity::kError), 0u);
}

TEST(LintReportTest, RenderingAndCounting) {
  LintReport report;
  Diagnostic d;
  d.severity = Severity::kError;
  d.check = CheckId::kDanglingOutput;
  d.location = {.switch_id = 2, .table_id = 0, .entry_id = 17};
  d.message = "output to nonexistent port 9";
  d.payload.emplace_back("port", "9");
  report.add(d);

  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_EQ(report.count(CheckId::kDanglingOutput), 1u);
  EXPECT_TRUE(report.has_errors());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("dangling-output"), std::string::npos);
  EXPECT_NE(text.find("sw=2"), std::string::npos);
  EXPECT_NE(text.find("entry=17"), std::string::npos);
  EXPECT_NE(text.find("port=9"), std::string::npos);
}

TEST(Linter, AmbiguousPriorityOverlapIsWarnedAtTheLaterEntry) {
  Fixture f;
  const auto first =
      f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(f.port01()));
  const auto second =
      f.add(0, 0, 10, ts("0xxxxxxx"), flow::Action::output(f.host(0)));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));

  const LintReport report = Linter().run(f.rules);
  ASSERT_EQ(report.count(CheckId::kAmbiguousPriority), 1u)
      << report.to_string();
  const Diagnostic* d = report.by_check(CheckId::kAmbiguousPriority)[0];
  EXPECT_EQ(d->severity, Severity::kWarning);
  // The later-installed entry is flagged, naming the earlier one it ties
  // with (install order decides the winner under tie-aware semantics).
  EXPECT_EQ(d->location.entry_id, second);
  ASSERT_FALSE(d->payload.empty());
  EXPECT_EQ(d->payload[0].first, "ties-with");
  EXPECT_EQ(d->payload[0].second, std::to_string(first));
}

TEST(Linter, AmbiguousPriorityCheckCanBeDisabled) {
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(f.port01()));
  f.add(0, 0, 10, ts("0xxxxxxx"), flow::Action::output(f.host(0)));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));
  LintConfig config;
  config.ambiguous_priority_check = false;
  const LintReport report = Linter(config).run(f.rules);
  EXPECT_EQ(report.count(CheckId::kAmbiguousPriority), 0u)
      << report.to_string();
}

TEST(Linter, SamePriorityDisjointEntriesAreNotAmbiguous) {
  Fixture f;
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(f.port01()));
  f.add(0, 0, 10, ts("01xxxxxx"), flow::Action::output(f.host(0)));
  // Overlapping matches at *different* priorities are ordinary shadowing
  // structure, not ambiguity.
  f.add(0, 0, 5, ts("0xxxxxxx"), flow::Action::output(f.host(0)));
  f.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(f.host(1)));
  const LintReport report = Linter().run(f.rules);
  EXPECT_EQ(report.count(CheckId::kAmbiguousPriority), 0u)
      << report.to_string();
}

// Reports leave the linter sorted by (check, switch, table, entry) so their
// rendering is a pure function of the analyzed model.
TEST(Linter, ReportIsDeterministicallySorted) {
  Fixture f;
  // Seed defects across switches and checks, installed in scrambled order.
  f.add(1, 0, 10, ts("01xxxxxx"), flow::Action::output(flow::PortId{9}));
  f.add(0, 0, 10, ts("00xxxxxx"), flow::Action::goto_table(7));
  f.add(0, 0, 10, ts("0xxxxxxx"), flow::Action::output(flow::PortId{8}));
  const LintReport a = Linter().run(f.rules);
  const LintReport b = Linter().run(f.rules);
  EXPECT_TRUE(a.is_sorted());
  EXPECT_EQ(a.to_string(), b.to_string());
  // Sorted means grouped by check id first, then location.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(static_cast<int>(a.diagnostics()[i - 1].check),
              static_cast<int>(a.diagnostics()[i].check));
  }
}

TEST(BuildCheckedSnapshot, InvariantDiagnosticsAreMergedIntoTheReport) {
  Fixture f;
  f.add(0, 0, 10, ts("0xxxxxxx"), flow::Action::output(f.port01()));
  f.add(1, 0, 10, ts("0xxxxxxx"), flow::Action::output(f.host(1)));
  LintConfig config;
  config.invariants.add(Invariant::no_reach(0, 1));  // violated by design
  LintReport report;
  const core::AnalysisSnapshot snapshot =
      build_checked_snapshot(f.rules, config, &report);
  (void)snapshot;
  EXPECT_EQ(report.count(CheckId::kForbiddenPath), 1u) << report.to_string();
  EXPECT_TRUE(report.is_sorted());
}

TEST(BuildCheckedSnapshot, InvariantStrictModeRefusesViolatedSnapshots) {
  Fixture f;
  f.add(0, 0, 10, ts("0xxxxxxx"), flow::Action::output(f.port01()));
  f.add(1, 0, 10, ts("0xxxxxxx"), flow::Action::output(f.host(1)));
  LintConfig config;
  config.invariants.add(Invariant::no_reach(0, 1));
  config.invariant_strict = true;
  try {
    build_checked_snapshot(f.rules, config);
    FAIL() << "expected LintError";
  } catch (const LintError& e) {
    EXPECT_GE(e.report().count(CheckId::kForbiddenPath), 1u);
  }

  // The same network under a satisfiable invariant set constructs fine.
  config.invariants = InvariantSet::builtin();
  config.invariants.add(Invariant::reach(0, 1));
  EXPECT_NO_THROW(build_checked_snapshot(f.rules, config));
}

}  // namespace
}  // namespace sdnprobe::analysis
