// Tests for the rule graph and the MLPC solver, including the paper's
// worked example (Figures 3-6) and property sweeps over synthesized
// rulesets.
#include <gtest/gtest.h>

#include <set>

#include "core/analysis_snapshot.h"
#include "core/legal_paths.h"
#include "core/mlpc.h"
#include "core/rule_graph.h"
#include "flow/synthesizer.h"
#include "topo/generator.h"

namespace sdnprobe::core {
namespace {

hsa::TernaryString ts(const char* s) {
  return *hsa::TernaryString::parse(s);
}

// The paper's Figure 3 network: switches A..E (0..4); boxed rules per
// switch; topology A-B, B-C, B-D, C-E, D-E.
struct PaperExample {
  flow::RuleSet rules;
  flow::EntryId a1, b1, b2, b3, c1, c2, d1, e1, e2, e3;
};

PaperExample make_paper_example() {
  topo::Graph g(5);  // 0=A 1=B 2=C 3=D 4=E
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  PaperExample ex{flow::RuleSet(g, 8), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  flow::RuleSet& rs = ex.rules;
  auto add = [&rs](flow::SwitchId sw, int prio, const char* match,
                   flow::Action action, const char* set = nullptr) {
    flow::FlowEntry e;
    e.switch_id = sw;
    e.priority = prio;
    e.match = ts(match);
    e.action = action;
    if (set) e.set_field = ts(set);
    return rs.add_entry(e);
  };
  const auto out = [&rs](flow::SwitchId from, flow::SwitchId to) {
    return flow::Action::output(*rs.ports().port_to(from, to));
  };
  const auto host = [&rs](flow::SwitchId sw) {
    return flow::Action::output(rs.ports().host_port(sw));
  };
  // Figure 3 (priorities: stack top = highest).
  ex.a1 = add(0, 10, "00101xxx", out(0, 1));
  ex.b1 = add(1, 30, "0010xxxx", out(1, 2));
  ex.b2 = add(1, 20, "0011xxxx", out(1, 2));
  ex.b3 = add(1, 10, "000xxxxx", out(1, 3));
  ex.c1 = add(2, 20, "00100xxx", out(2, 4));
  ex.c2 = add(2, 10, "001xxxxx", out(2, 4));
  ex.d1 = add(3, 10, "000xxxxx", out(3, 4), "0111xxxx");
  ex.e1 = add(4, 30, "0010xxxx", host(4));
  ex.e2 = add(4, 20, "001xxxxx", host(4));
  ex.e3 = add(4, 10, "0111xxxx", host(4));
  return ex;
}

TEST(RuleGraphPaper, EdgesMatchFigure3) {
  const PaperExample ex = make_paper_example();
  RuleGraph g(ex.rules);
  EXPECT_EQ(g.vertex_count(), 10);
  EXPECT_TRUE(g.dead_entries().empty());
  EXPECT_TRUE(g.is_acyclic());

  auto has_edge = [&](flow::EntryId from, flow::EntryId to) {
    const auto& succ = g.successors(g.vertex_for(from));
    for (const VertexId w : succ) {
      if (g.entry_of(w) == to) return true;
    }
    return false;
  };
  // Edges the paper draws.
  EXPECT_TRUE(has_edge(ex.a1, ex.b1));
  EXPECT_TRUE(has_edge(ex.b1, ex.c1));
  EXPECT_TRUE(has_edge(ex.b1, ex.c2));
  EXPECT_TRUE(has_edge(ex.b2, ex.c2));
  EXPECT_TRUE(has_edge(ex.b3, ex.d1));
  EXPECT_TRUE(has_edge(ex.c1, ex.e1));
  EXPECT_TRUE(has_edge(ex.c2, ex.e1));
  EXPECT_TRUE(has_edge(ex.c2, ex.e2));
  EXPECT_TRUE(has_edge(ex.d1, ex.e3));
  // Non-edges the paper calls out: c1 -> e2 is blocked because every
  // 00100xxx packet matches e1 (higher priority) at E.
  EXPECT_FALSE(has_edge(ex.c1, ex.e2));
  // b2's output cannot match c1 (0011 vs 00100).
  EXPECT_FALSE(has_edge(ex.b2, ex.c1));
}

TEST(RuleGraphPaper, LegalityExamples) {
  const PaperExample ex = make_paper_example();
  RuleGraph g(ex.rules);
  auto v = [&](flow::EntryId e) { return g.vertex_for(e); };
  // Definition 1's example: a1 -> b1 -> c2 -> e1 is legal (00101xxx works).
  EXPECT_TRUE(g.is_legal_path({v(ex.a1), v(ex.b1), v(ex.c2), v(ex.e1)}));
  // §V-B: the MPC path a1 -> b1 -> c1 -> e1 is NOT legal (empty meet).
  EXPECT_FALSE(g.is_legal_path({v(ex.a1), v(ex.b1), v(ex.c1), v(ex.e1)}));
  // §V-A closure example: b2 -> c2 -> e2 is legal (header 0011xxxx).
  EXPECT_TRUE(g.is_legal_path({v(ex.b2), v(ex.c2), v(ex.e2)}));
  // d1's set field rewrites to 0111xxxx, which e3 matches.
  EXPECT_TRUE(g.is_legal_path({v(ex.b3), v(ex.d1), v(ex.e3)}));
  const auto in =
      g.path_input_space({v(ex.a1), v(ex.b1), v(ex.c2), v(ex.e1)});
  EXPECT_TRUE(in.contains(ts("00101000")));
  EXPECT_FALSE(in.contains(ts("00100000")));
}

TEST(RuleGraphPaper, ClosureContainsTransitiveLegalEdge) {
  const PaperExample ex = make_paper_example();
  RuleGraph g(ex.rules);
  const auto closure = g.closure_edges();
  // Figure 4's red edge: (b2, e2) via the legal path b2 -> c2 -> e2.
  const auto& from_b2 =
      closure[static_cast<std::size_t>(g.vertex_for(ex.b2))];
  EXPECT_NE(std::find(from_b2.begin(), from_b2.end(), g.vertex_for(ex.e2)),
            from_b2.end());
}

TEST(MlpcPaper, FourTestPacketsCoverFigureThree) {
  // Figure 6: the minimum legal path cover has 4 paths for the 10 rules.
  const PaperExample ex = make_paper_example();
  RuleGraph g(ex.rules);
  AnalysisSnapshot snap(g);
  const Cover cover = MlpcSolver().solve(snap);
  EXPECT_EQ(cover.path_count(), 4u);
  std::set<VertexId> covered;
  for (const auto& p : cover.paths) {
    EXPECT_TRUE(g.is_legal_path(p.vertices));
    covered.insert(p.vertices.begin(), p.vertices.end());
  }
  EXPECT_EQ(static_cast<int>(covered.size()), g.vertex_count());
}

TEST(MlpcPaper, LegalPathStats) {
  const PaperExample ex = make_paper_example();
  RuleGraph g(ex.rules);
  const auto stats = compute_legal_path_stats(g);
  EXPECT_GT(stats.total_paths, 0u);
  EXPECT_GE(stats.max_length, 4u);  // a1->b1->c2->e1
  EXPECT_FALSE(stats.truncated);
}

TEST(RuleGraph, DeadEntriesReported) {
  topo::Graph g(2);
  g.add_edge(0, 1);
  flow::RuleSet rs(g, 8);
  flow::FlowEntry shadow;
  shadow.switch_id = 0;
  shadow.priority = 20;
  shadow.match = ts("001xxxxx");
  shadow.action = flow::Action::output(*rs.ports().port_to(0, 1));
  rs.add_entry(shadow);
  flow::FlowEntry dead;
  dead.switch_id = 0;
  dead.priority = 10;
  dead.match = ts("00101xxx");  // fully inside the higher-priority match
  dead.action = flow::Action::drop();
  const flow::EntryId dead_id = rs.add_entry(dead);
  RuleGraph graph(rs);
  ASSERT_EQ(graph.dead_entries().size(), 1u);
  EXPECT_EQ(graph.dead_entries()[0], dead_id);
  EXPECT_EQ(graph.vertex_for(dead_id), -1);
}

// Property sweep over synthesized rulesets: every cover is legal, complete,
// stitch-free (Theorem 4's local-optimality condition), and the randomized
// variant is a valid (if larger) cover that varies by seed.
struct MlpcCase {
  std::uint64_t seed;
  long rules;
};

class MlpcProperty : public ::testing::TestWithParam<MlpcCase> {};

TEST_P(MlpcProperty, CoverInvariants) {
  topo::GeneratorConfig tc;
  tc.node_count = 12;
  tc.link_count = 20;
  tc.seed = GetParam().seed;
  const topo::Graph topo = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = GetParam().rules;
  sc.seed = GetParam().seed + 99;
  const flow::RuleSet rs = flow::synthesize_ruleset(topo, sc);
  RuleGraph g(rs);
  AnalysisSnapshot snap(g);
  ASSERT_TRUE(g.is_acyclic());

  MlpcSolver solver;
  const Cover cover = solver.solve(snap);
  std::set<VertexId> covered;
  for (const auto& p : cover.paths) {
    ASSERT_FALSE(p.vertices.empty());
    EXPECT_TRUE(g.is_legal_path(p.vertices));
    EXPECT_FALSE(p.output_space.is_empty());
    covered.insert(p.vertices.begin(), p.vertices.end());
  }
  EXPECT_EQ(static_cast<int>(covered.size()), g.vertex_count());
  EXPECT_TRUE(solver.is_stitch_free(snap, cover));

  MlpcConfig rc;
  rc.common.randomized = true;
  rc.common.seed = GetParam().seed;
  const Cover random_cover = MlpcSolver(rc).solve(snap);
  std::set<VertexId> rcovered;
  for (const auto& p : random_cover.paths) {
    EXPECT_TRUE(g.is_legal_path(p.vertices));
    rcovered.insert(p.vertices.begin(), p.vertices.end());
  }
  EXPECT_EQ(static_cast<int>(rcovered.size()), g.vertex_count());
  EXPECT_GE(random_cover.path_count(), cover.path_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlpcProperty,
                         ::testing::Values(MlpcCase{1, 400}, MlpcCase{2, 700},
                                           MlpcCase{3, 1000},
                                           MlpcCase{4, 1500}));

TEST(MlpcRandomized, DifferentSeedsGiveDifferentTerminals) {
  topo::GeneratorConfig tc;
  tc.node_count = 14;
  tc.link_count = 26;
  tc.seed = 8;
  const topo::Graph topo = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 900;
  sc.seed = 77;
  const flow::RuleSet rs = flow::synthesize_ruleset(topo, sc);
  RuleGraph g(rs);
  AnalysisSnapshot snap(g);
  std::set<std::set<VertexId>> terminal_sets;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    MlpcConfig mc;
    mc.common.randomized = true;
    mc.common.seed = seed;
    const Cover c = MlpcSolver(mc).solve(snap);
    std::set<VertexId> terms;
    for (const auto& p : c.paths) terms.insert(p.vertices.back());
    terminal_sets.insert(std::move(terms));
  }
  EXPECT_GT(terminal_sets.size(), 1u)
      << "randomized covers must vary across seeds (§V-C)";
}

}  // namespace
}  // namespace sdnprobe::core
