// End-to-end integration: synthesize a topology + ruleset, build the rule
// graph, solve MLPC, generate probes, run them through the simulated data
// plane, and localize injected faults with SDNProbe and both baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/atpg.h"
#include "baselines/per_rule.h"
#include "controller/controller.h"
#include "core/analysis_snapshot.h"
#include "core/localizer.h"
#include "core/mlpc.h"
#include "core/probe_engine.h"
#include "core/rule_graph.h"
#include "core/scenario.h"
#include "dataplane/network.h"
#include "flow/synthesizer.h"
#include "topo/generator.h"

namespace sdnprobe {
namespace {

flow::RuleSet make_test_ruleset(std::uint64_t seed = 3,
                                long entries = 600,
                                bool aggregates = false) {
  topo::GeneratorConfig tc;
  tc.node_count = 12;
  tc.link_count = 20;
  tc.seed = seed;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = entries;
  sc.aggregates = aggregates;
  sc.set_field_fraction = 0.05;
  sc.seed = seed + 1;
  return flow::synthesize_ruleset(g, sc);
}

TEST(IntegrationSmoke, RuleGraphIsAcyclicAndCovers) {
  const flow::RuleSet rs = make_test_ruleset();
  core::RuleGraph graph(rs);
  EXPECT_GT(graph.vertex_count(), 0);
  EXPECT_TRUE(graph.is_acyclic());
  // Vertices + dead entries account for every policy entry.
  EXPECT_EQ(static_cast<std::size_t>(graph.vertex_count()) +
                graph.dead_entries().size(),
            rs.entry_count());
}

TEST(IntegrationSmoke, MlpcCoversAllVerticesWithLegalPaths) {
  const flow::RuleSet rs = make_test_ruleset();
  core::RuleGraph graph(rs);
  core::AnalysisSnapshot snap(graph);
  const core::Cover cover = core::MlpcSolver().solve(snap);
  // Every vertex appears on some path.
  std::set<core::VertexId> covered;
  for (const auto& p : cover.paths) {
    EXPECT_TRUE(graph.is_legal_path(p.vertices));
    covered.insert(p.vertices.begin(), p.vertices.end());
  }
  EXPECT_EQ(static_cast<int>(covered.size()), graph.vertex_count());
  // Fewer probes than rules (stitching must achieve something).
  EXPECT_LT(cover.path_count(),
            static_cast<std::size_t>(graph.vertex_count()));
}

TEST(IntegrationSmoke, CleanNetworkHasNoFailuresAndNoFlags) {
  const flow::RuleSet rs = make_test_ruleset();
  core::RuleGraph graph(rs);
  core::AnalysisSnapshot snap(graph);
  sim::EventLoop loop;
  dataplane::Network net(rs, loop);
  controller::Controller ctrl(rs, net);
  core::LocalizerConfig cfg;
  cfg.max_rounds = 4;
  core::FaultLocalizer loc(snap, ctrl, loop, cfg);
  const core::DetectionReport report = loc.run();
  EXPECT_TRUE(report.flagged_switches.empty());
  EXPECT_GE(report.rounds, 1);
  EXPECT_GT(report.probes_sent, 0u);
}

TEST(IntegrationSmoke, LocalizesSingleDropFault) {
  const flow::RuleSet rs = make_test_ruleset();
  core::RuleGraph graph(rs);
  core::AnalysisSnapshot snap(graph);
  sim::EventLoop loop;
  dataplane::Network net(rs, loop);
  controller::Controller ctrl(rs, net);

  util::Rng rng(11);
  const auto faulty = core::choose_faulty_entries(graph, 1, rng);
  ASSERT_EQ(faulty.size(), 1u);
  net.faults().add_fault(faulty[0], dataplane::FaultSpec::Drop());
  const flow::SwitchId faulty_switch = rs.entry(faulty[0]).switch_id;

  core::LocalizerConfig cfg;
  cfg.max_rounds = 32;
  core::FaultLocalizer loc(snap, ctrl, loop, cfg);
  const core::DetectionReport report = loc.run();
  ASSERT_EQ(report.flagged_switches.size(), 1u) << "expected exact detection";
  EXPECT_EQ(report.flagged_switches[0], faulty_switch);
  EXPECT_GT(report.detection_time_s, 0.0);
}

TEST(IntegrationSmoke, LocalizesMultipleBasicFaultsExactly) {
  const flow::RuleSet rs = make_test_ruleset(5, 800);
  core::RuleGraph graph(rs);
  core::AnalysisSnapshot snap(graph);
  sim::EventLoop loop;
  dataplane::Network net(rs, loop);
  controller::Controller ctrl(rs, net);

  util::Rng rng(23);
  core::FaultMix mix;  // drop/misdirect/modify, persistent
  const auto faulty =
      core::plan_basic_faults(graph, 5, mix, rng, &net.faults());
  const auto truth = net.faulty_switches();

  core::LocalizerConfig cfg;
  cfg.max_rounds = 48;
  core::FaultLocalizer loc(snap, ctrl, loop, cfg);
  const core::DetectionReport report = loc.run();
  const auto score =
      core::score_detection(report.flagged_switches, truth, rs.switch_count());
  EXPECT_EQ(score.false_negative, 0u)
      << "SDNProbe must detect all basic persistent faults";
  EXPECT_EQ(score.false_positive, 0u)
      << "SDNProbe must not blame benign switches for basic faults";
}

TEST(IntegrationSmoke, PerRuleBaselineDetectsButOverBlames) {
  const flow::RuleSet rs = make_test_ruleset(7, 700);
  core::RuleGraph graph(rs);
  core::AnalysisSnapshot snap(graph);
  sim::EventLoop loop;
  dataplane::Network net(rs, loop);
  controller::Controller ctrl(rs, net);

  util::Rng rng(31);
  core::FaultMix mix;
  mix.misdirect = false;  // keep it to stealth-free faults for determinism
  mix.modify = false;
  core::plan_basic_faults(graph, 4, mix, rng, &net.faults());
  const auto truth = net.faulty_switches();

  baselines::PerRuleTest prt(snap, ctrl, loop);
  const core::DetectionReport report = prt.run();
  const auto score =
      core::score_detection(report.flagged_switches, truth, rs.switch_count());
  EXPECT_EQ(score.false_negative, 0u);
  // The three-switch blame set must overreach with several faults present.
  EXPECT_GT(score.false_positive, 0u);
}

TEST(IntegrationSmoke, AtpgDetectsBasicFaults) {
  const flow::RuleSet rs = make_test_ruleset(9, 700);
  core::RuleGraph graph(rs);
  core::AnalysisSnapshot snap(graph);
  sim::EventLoop loop;
  dataplane::Network net(rs, loop);
  controller::Controller ctrl(rs, net);

  util::Rng rng(37);
  core::FaultMix mix;
  mix.misdirect = false;
  mix.modify = false;
  // Intersection-based localization needs enough failing paths to form
  // intersections at the faulty switches; the paper's Fig. 9 sweeps 10%+ of
  // rules faulty, which is the density we reproduce here.
  const std::size_t count = static_cast<std::size_t>(graph.vertex_count()) / 10;
  core::plan_basic_faults(graph, count, mix, rng, &net.faults());
  const auto truth = net.faulty_switches();

  baselines::Atpg atpg(snap, ctrl, loop);
  EXPECT_GT(atpg.probe_count(), 0u);
  const core::DetectionReport report = atpg.run();
  const auto score =
      core::score_detection(report.flagged_switches, truth, rs.switch_count());
  EXPECT_EQ(score.false_negative, 0u);
}

TEST(IntegrationSmoke, ProbeCountOrdering) {
  // Paper Fig. 8(a): SDNProbe <= ATPG <= Per-rule.
  const flow::RuleSet rs = make_test_ruleset(13, 900);
  core::RuleGraph graph(rs);
  core::AnalysisSnapshot snap(graph);
  sim::EventLoop loop;
  dataplane::Network net(rs, loop);
  controller::Controller ctrl(rs, net);

  core::LocalizerConfig cfg;
  core::FaultLocalizer loc(snap, ctrl, loop, cfg);
  const std::size_t sdnprobe_count = loc.initial_probe_count();

  baselines::Atpg atpg(snap, ctrl, loop);
  const std::size_t atpg_count = atpg.probe_count();

  baselines::PerRuleTest prt(snap, ctrl, loop);
  const std::size_t per_rule_count = prt.probe_count();

  EXPECT_LE(sdnprobe_count, atpg_count);
  EXPECT_LE(atpg_count, per_rule_count);
  EXPECT_LT(sdnprobe_count, per_rule_count);
}

}  // namespace
}  // namespace sdnprobe
