// Tests for analysis::Verifier and the invariant DSL: each invariant kind's
// violation is detected with the right check id and evidence on hand-built
// networks, satisfied invariants stay silent, slices restrict what a walk
// may inject, budget exhaustion truncates deterministically — and, the
// property the whole design rests on, apply_delta() after a churn batch is
// bit-identical to a from-scratch verify over the same snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/invariant.h"
#include "analysis/verifier.h"
#include "core/analysis_snapshot.h"
#include "core/rule_graph.h"
#include "flow/synthesizer.h"
#include "topo/generator.h"
#include "topo/graph.h"
#include "util/rng.h"

namespace sdnprobe::analysis {
namespace {

hsa::TernaryString ts(const char* s) {
  return *hsa::TernaryString::parse(s);
}

// A small network under test; width-8 headers.
struct Net {
  explicit Net(topo::Graph g) : rules(std::move(g), 8) {}

  // 0 - 1 - 2 - ... - (n-1)
  static topo::Graph line(int n) {
    topo::Graph g(n);
    for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
    return g;
  }

  //     1
  //   /   \
  // 0       3
  //   \   /
  //     2
  static topo::Graph diamond() {
    topo::Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    return g;
  }

  flow::EntryId add(flow::SwitchId sw, flow::TableId table, int priority,
                    hsa::TernaryString match, flow::Action action,
                    hsa::TernaryString set_field = hsa::TernaryString()) {
    flow::FlowEntry e;
    e.switch_id = sw;
    e.table_id = table;
    e.priority = priority;
    e.match = std::move(match);
    e.set_field = std::move(set_field);
    e.action = action;
    return rules.add_entry(std::move(e));
  }

  flow::PortId port(flow::SwitchId from, flow::SwitchId to) const {
    return *rules.ports().port_to(from, to);
  }
  flow::PortId host(flow::SwitchId sw) const {
    return rules.ports().host_port(sw);
  }

  core::AnalysisSnapshot snap() const {
    return core::AnalysisSnapshot::build(rules);
  }

  flow::RuleSet rules;
};

// Forward every 0xxxxxxx header down the line and into the last host.
Net forwarding_line(int n) {
  Net net(Net::line(n));
  for (int sw = 0; sw + 1 < n; ++sw) {
    net.add(sw, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.port(sw, sw + 1)));
  }
  net.add(n - 1, 0, 10, ts("0xxxxxxx"),
          flow::Action::output(net.host(n - 1)));
  return net;
}

TEST(Verifier, CleanChainSatisfiesBuiltinsAndReach) {
  Net net = forwarding_line(3);
  InvariantSet invs = InvariantSet::builtin();
  invs.add(Invariant::reach(0, 2));
  Verifier verifier(invs);
  const core::AnalysisSnapshot snap = net.snap();
  const VerifyReport report = verifier.verify(snap);
  EXPECT_EQ(report.size(), 0u) << report.to_string();
  EXPECT_EQ(report.stats().classes_total, 3u);
  EXPECT_EQ(report.stats().classes_verified, 3u);
  EXPECT_EQ(report.stats().classes_reused, 0u);
  EXPECT_TRUE(report.is_sorted());
}

TEST(Verifier, UnreachablePairIsReported) {
  Net net = forwarding_line(3);
  InvariantSet invs;
  invs.add(Invariant::reach(2, 0));  // no reverse path exists
  const VerifyReport report = Verifier(invs).verify(net.snap());
  ASSERT_EQ(report.count(CheckId::kUnreachablePair), 1u) << report.to_string();
  const Diagnostic* d = report.by_check(CheckId::kUnreachablePair)[0];
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.switch_id, 2);
  ASSERT_FALSE(d->payload.empty());
  EXPECT_EQ(d->payload[0].first, "invariant");
  EXPECT_EQ(d->payload[0].second, "reach 2 0");
}

TEST(Verifier, ForbiddenDeliveryCarriesPathAndCounterexample) {
  Net net = forwarding_line(3);
  InvariantSet invs;
  invs.add(Invariant::no_reach(0, 2));
  const VerifyReport report = Verifier(invs).verify(net.snap());
  ASSERT_EQ(report.count(CheckId::kForbiddenPath), 1u) << report.to_string();
  const Diagnostic* d = report.by_check(CheckId::kForbiddenPath)[0];
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.switch_id, 2);  // points at the arrival entry
  bool saw_path = false, saw_counterexample = false, saw_header = false;
  for (const auto& [key, value] : d->payload) {
    saw_path |= key == "path-entries" && !value.empty();
    saw_counterexample |= key == "counterexample" && !value.empty();
    saw_header |= key == "header" && !value.empty();
  }
  EXPECT_TRUE(saw_path);
  EXPECT_TRUE(saw_counterexample);
  EXPECT_TRUE(saw_header);
}

TEST(Verifier, SliceRestrictsWhatAWalkMayInject) {
  Net net = forwarding_line(3);
  // The chain only forwards 0xxxxxxx, so forbidding 1xxxxxxx deliveries
  // holds vacuously while forbidding 0xxxxxxx deliveries is violated.
  InvariantSet holds;
  holds.add(Invariant::no_reach(0, 2, ts("1xxxxxxx")));
  EXPECT_EQ(Verifier(holds).verify(net.snap()).size(), 0u);

  InvariantSet violated;
  violated.add(Invariant::no_reach(0, 2, ts("0xxxxxxx")));
  const VerifyReport report = Verifier(violated).verify(net.snap());
  ASSERT_EQ(report.count(CheckId::kForbiddenPath), 1u) << report.to_string();
}

TEST(Verifier, WaypointBypassIsReported) {
  Net net(Net::diamond());
  // 00xxxxxx travels 0→1→3, 01xxxxxx travels 0→2→3.
  net.add(0, 0, 10, ts("00xxxxxx"), flow::Action::output(net.port(0, 1)));
  net.add(0, 0, 10, ts("01xxxxxx"), flow::Action::output(net.port(0, 2)));
  net.add(1, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.port(1, 3)));
  net.add(2, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.port(2, 3)));
  net.add(3, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.host(3)));

  // Unsliced: the 00xxxxxx class reaches 3 through 1, bypassing waypoint 2.
  InvariantSet bypassed;
  bypassed.add(Invariant::waypoint(0, 2, 3));
  const VerifyReport report = Verifier(bypassed).verify(net.snap());
  ASSERT_EQ(report.count(CheckId::kWaypointBypass), 1u) << report.to_string();
  EXPECT_EQ(report.by_check(CheckId::kWaypointBypass)[0]->location.switch_id,
            3);

  // Sliced to the branch that does traverse the waypoint: satisfied.
  InvariantSet sliced;
  sliced.add(Invariant::waypoint(0, 2, 3, ts("01xxxxxx")));
  EXPECT_EQ(Verifier(sliced).verify(net.snap()).size(), 0u);
}

TEST(Verifier, ForwardingLoopIsReportedWithCycleEvidence) {
  Net net(Net::line(2));
  const auto e0 =
      net.add(0, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.port(0, 1)));
  const auto e1 =
      net.add(1, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.port(1, 0)));
  const VerifyReport report =
      Verifier(InvariantSet::builtin()).verify(net.snap());
  ASSERT_GE(report.count(CheckId::kForwardingLoop), 1u) << report.to_string();
  const Diagnostic* d = report.by_check(CheckId::kForwardingLoop)[0];
  EXPECT_EQ(d->severity, Severity::kError);
  bool saw_cycle = false;
  for (const auto& [key, value] : d->payload) {
    if (key != "cycle-entries") continue;
    saw_cycle = true;
    // Both entries participate in the reported cycle.
    EXPECT_NE(value.find(std::to_string(e0)), std::string::npos) << value;
    EXPECT_NE(value.find(std::to_string(e1)), std::string::npos) << value;
  }
  EXPECT_TRUE(saw_cycle);
}

TEST(Verifier, TableMissResidualIsABlackhole) {
  Net net(Net::line(2));
  const auto emitter =
      net.add(0, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.port(0, 1)));
  // Switch 1 only absorbs 00xxxxxx: the 01xxxxxx remainder is silently lost.
  net.add(1, 0, 10, ts("00xxxxxx"), flow::Action::output(net.host(1)));
  const VerifyReport report =
      Verifier(InvariantSet::builtin()).verify(net.snap());
  ASSERT_EQ(report.count(CheckId::kBlackhole), 1u) << report.to_string();
  const Diagnostic* d = report.by_check(CheckId::kBlackhole)[0];
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.entry_id, emitter);
  EXPECT_NE(d->message.find("table-miss"), std::string::npos) << d->message;
  bool saw_residual = false;
  for (const auto& [key, value] : d->payload) {
    if (key == "space") {
      saw_residual = true;
      EXPECT_EQ(value, "01xxxxxx");
    }
  }
  EXPECT_TRUE(saw_residual);
}

TEST(Verifier, LinklessOutputPortBlackholesEverything) {
  Net net(Net::line(2));
  const auto bad =
      net.add(0, 0, 10, ts("0xxxxxxx"), flow::Action::output(flow::PortId{5}));
  net.add(1, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.host(1)));
  const VerifyReport report =
      Verifier(InvariantSet::builtin()).verify(net.snap());
  ASSERT_EQ(report.count(CheckId::kBlackhole), 1u) << report.to_string();
  const Diagnostic* d = report.by_check(CheckId::kBlackhole)[0];
  EXPECT_EQ(d->location.entry_id, bad);
  EXPECT_NE(d->message.find("no link"), std::string::npos) << d->message;
}

TEST(Verifier, IntentionalTerminalsAreNotBlackholes) {
  Net net(Net::line(2));
  net.add(0, 0, 30, ts("00xxxxxx"), flow::Action::drop());
  net.add(0, 0, 20, ts("01xxxxxx"), flow::Action::to_controller());
  net.add(0, 0, 10, ts("1xxxxxxx"), flow::Action::output(net.host(0)));
  net.add(1, 0, 10, ts("xxxxxxxx"), flow::Action::output(net.host(1)));
  const VerifyReport report =
      Verifier(InvariantSet::builtin()).verify(net.snap());
  EXPECT_EQ(report.size(), 0u) << report.to_string();
}

TEST(Verifier, InvalidInvariantsAreFlaggedNotCrashed) {
  Net net = forwarding_line(2);
  InvariantSet invs;
  invs.add(Invariant::reach(0, 99));              // unknown switch
  invs.add(Invariant::no_reach(0, 1, ts("xx")));  // wrong slice width
  const VerifyReport report = Verifier(invs).verify(net.snap());
  EXPECT_EQ(report.count(CheckId::kInvalidInvariant), 2u)
      << report.to_string();
  // Invalid reach invariants must not double-report as unreachable pairs.
  EXPECT_EQ(report.count(CheckId::kUnreachablePair), 0u);
}

TEST(Verifier, BudgetExhaustionTruncatesDeterministically) {
  Net net(Net::line(2));
  net.add(0, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.port(0, 1)));
  net.add(1, 0, 10, ts("0xxxxxxx"), flow::Action::output(net.port(1, 0)));
  VerifierConfig config;
  config.class_step_budget = 1;
  const core::AnalysisSnapshot snap = net.snap();
  const VerifyReport a = Verifier(InvariantSet::builtin(), config).verify(snap);
  const VerifyReport b = Verifier(InvariantSet::builtin(), config).verify(snap);
  EXPECT_GT(a.stats().truncated_classes, 0u);
  EXPECT_EQ(a.count(CheckId::kVerifyTruncated), 1u) << a.to_string();
  EXPECT_EQ(a.by_check(CheckId::kVerifyTruncated)[0]->severity,
            Severity::kInfo);
  EXPECT_EQ(a.to_string(), b.to_string());
}

// --- Invariant DSL. ---

TEST(InvariantSet, SpecFormatRoundTrips) {
  InvariantSet invs;
  invs.add(Invariant::loop_free());
  invs.add(Invariant::blackhole_free());
  invs.add(Invariant::reach(0, 3));
  invs.add(Invariant::no_reach(1, 2, ts("10xxxxxx")));
  invs.add(Invariant::waypoint(0, 2, 3, ts("01xxxxxx")));
  const std::string spec = invs.to_string();
  std::string error;
  const auto parsed = InvariantSet::parse(spec, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->to_string(), spec);
  EXPECT_EQ(parsed->size(), invs.size());
}

TEST(InvariantSet, ParserSkipsCommentsAndBlankLines) {
  const auto parsed = InvariantSet::parse(
      "# the default contract\n"
      "loop-free\n"
      "\n"
      "reach 0 3   # with trailing comment\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->invariants()[1].to_string(), "reach 0 3");
}

TEST(InvariantSet, ParserRejectsMalformedLinesWithLineNumbers) {
  const char* bad_specs[] = {
      "teleport 0 1",            // unknown verb
      "reach 0",                 // missing destination
      "reach zero one",          // non-numeric switch
      "reach -1 2",              // negative switch
      "waypoint 0 1",            // waypoint needs three switches
      "loop-free 0xxxxxxx",      // global invariants take no slice
      "reach 0 1 0zxxxxxx",      // bad slice character
      "reach 0 1 0xxxxxxx junk"  // trailing garbage
  };
  for (const char* spec : bad_specs) {
    std::string error;
    EXPECT_FALSE(InvariantSet::parse(spec, &error).has_value()) << spec;
    EXPECT_NE(error.find("line 1"), std::string::npos) << spec << ": " << error;
  }
}

// --- The incrementality property. ---

// Drive a synthesized network through random install/remove churn and
// require, after every burst, that apply_delta over the batch's touched
// region produces a report bit-identical to a from-scratch verify of the
// same snapshot — while actually reusing classes (otherwise the test only
// proves the trivial "re-verify everything" implementation).
TEST(VerifierChurn, ApplyDeltaIsBitIdenticalToFullReverify) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    topo::GeneratorConfig tc;
    tc.node_count = 8;
    tc.link_count = 13;
    tc.seed = seed;
    const topo::Graph topo = topo::make_rocketfuel_like(tc);
    flow::SynthesizerConfig sc;
    sc.target_entry_count = 220;
    sc.seed = seed * 31 + 7;
    flow::RuleSet rules = flow::synthesize_ruleset(topo, sc);
    flow::SynthesizerConfig rc = sc;
    rc.target_entry_count = 120;
    rc.seed = seed * 131 + 71;
    const flow::RuleSet reservoir = flow::synthesize_ruleset(topo, rc);

    InvariantSet invs = InvariantSet::builtin();
    invs.add(Invariant::reach(0, 7));
    invs.add(Invariant::no_reach(1, 6));
    invs.add(Invariant::waypoint(0, 3, 5));

    core::RuleGraph graph(rules);
    Verifier incremental(invs);
    incremental.verify(core::AnalysisSnapshot::adopt(graph));

    util::Rng rng(util::Rng::derive(seed, 0xD17A));
    std::vector<flow::EntryId> live;
    for (std::size_t i = 0; i < rules.entry_count(); ++i) {
      live.push_back(static_cast<flow::EntryId>(i));
    }
    std::size_t next_reservoir = 0;
    std::size_t reused_total = 0;

    constexpr int kBursts = 5;
    constexpr int kOpsPerBurst = 8;
    for (int burst = 0; burst < kBursts; ++burst) {
      std::vector<core::VertexId> touched;
      for (int op = 0; op < kOpsPerBurst; ++op) {
        const bool do_install = live.empty() ||
                                (next_reservoir < reservoir.entry_count() &&
                                 rng.next_bool(0.45));
        if (do_install) {
          flow::FlowEntry e =
              reservoir.entry(static_cast<flow::EntryId>(next_reservoir++));
          e.id = -1;
          const flow::EntryId id = rules.add_entry(std::move(e));
          graph.apply_entry_added(id, &touched);
          live.push_back(id);
        } else {
          const std::size_t pick = rng.pick_index(live.size());
          const flow::EntryId id = live[pick];
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
          ASSERT_TRUE(rules.remove_entry(id));
          const auto removed_touched = graph.apply_entry_removed(id);
          touched.insert(touched.end(), removed_touched.begin(),
                         removed_touched.end());
        }
      }
      const core::AnalysisSnapshot snap = core::AnalysisSnapshot::adopt(graph);
      const VerifyReport delta = incremental.apply_delta(snap, touched);
      Verifier fresh(invs);
      const VerifyReport full = fresh.verify(snap);
      ASSERT_EQ(delta.to_string(), full.to_string())
          << "seed " << seed << " burst " << burst;
      ASSERT_EQ(delta.stats().classes_total, full.stats().classes_total)
          << "seed " << seed << " burst " << burst;
      ASSERT_TRUE(delta.is_sorted());
      reused_total += delta.stats().classes_reused;
    }
    // The delta path must actually slice: most classes survive most bursts.
    EXPECT_GT(reused_total, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sdnprobe::analysis
