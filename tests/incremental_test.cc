// Tests for incremental rule-graph maintenance (§VIII-C): applying
// apply_entry_added() per new rule must leave the graph semantically
// equivalent to a full rebuild — same active entries, same input spaces,
// same edge relation — and MLPC on the updated graph must cover the new
// rules.
#include <gtest/gtest.h>

#include <set>

#include "core/analysis_snapshot.h"
#include "core/mlpc.h"
#include "core/rule_graph.h"
#include "flow/synthesizer.h"
#include "topo/generator.h"

namespace sdnprobe::core {
namespace {

hsa::TernaryString ts(const char* s) {
  return *hsa::TernaryString::parse(s);
}

// Edge relation over entry-id pairs, active entries only.
std::set<std::pair<flow::EntryId, flow::EntryId>> edge_relation(
    const RuleGraph& g) {
  std::set<std::pair<flow::EntryId, flow::EntryId>> edges;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (!g.is_active(v)) continue;
    for (const VertexId w : g.successors(v)) {
      edges.emplace(g.entry_of(v), g.entry_of(w));
    }
  }
  return edges;
}

std::set<flow::EntryId> active_entries(const RuleGraph& g) {
  std::set<flow::EntryId> ids;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (g.is_active(v)) ids.insert(g.entry_of(v));
  }
  return ids;
}

class IncrementalEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IncrementalEquivalence, MatchesFullRebuild) {
  // Build a ruleset, hold back the last K entries, add them one by one.
  topo::GeneratorConfig tc;
  tc.node_count = 10;
  tc.link_count = 16;
  tc.seed = GetParam();
  const topo::Graph topo = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 500;
  sc.seed = GetParam() * 5 + 3;
  const flow::RuleSet full_rules = flow::synthesize_ruleset(topo, sc);
  constexpr std::size_t kHoldBack = 40;
  ASSERT_GT(full_rules.entry_count(), kHoldBack);

  // Replay: a second RuleSet receiving the same entries in the same order.
  flow::RuleSet incremental_rules(topo, full_rules.header_width());
  const std::size_t prefix = full_rules.entry_count() - kHoldBack;
  for (std::size_t i = 0; i < prefix; ++i) {
    flow::FlowEntry e = full_rules.entry(static_cast<flow::EntryId>(i));
    e.id = -1;
    incremental_rules.add_entry(std::move(e));
  }
  RuleGraph incremental(incremental_rules);
  for (std::size_t i = prefix; i < full_rules.entry_count(); ++i) {
    flow::FlowEntry e = full_rules.entry(static_cast<flow::EntryId>(i));
    e.id = -1;
    const flow::EntryId id = incremental_rules.add_entry(std::move(e));
    incremental.apply_entry_added(id);
  }

  const RuleGraph rebuilt(full_rules);
  EXPECT_EQ(active_entries(incremental), active_entries(rebuilt));
  EXPECT_EQ(edge_relation(incremental), edge_relation(rebuilt));
  EXPECT_EQ(incremental.edge_count(), rebuilt.edge_count());
  // Input spaces agree semantically for every active entry.
  for (const flow::EntryId id : active_entries(rebuilt)) {
    const VertexId vi = incremental.vertex_for(id);
    const VertexId vr = rebuilt.vertex_for(id);
    ASSERT_GE(vi, 0);
    ASSERT_GE(vr, 0);
    EXPECT_TRUE(incremental.in_space(vi) == rebuilt.in_space(vr))
        << "entry " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalence,
                         ::testing::Values(1, 2, 3));

TEST(Incremental, ShadowingDeactivatesAndUnshadowedStays) {
  topo::Graph g(2);
  g.add_edge(0, 1);
  flow::RuleSet rs(g, 8);
  const flow::PortId to1 = *rs.ports().port_to(0, 1);
  flow::FlowEntry low;
  low.switch_id = 0;
  low.priority = 10;
  low.match = ts("0010xxxx");
  low.action = flow::Action::output(to1);
  const flow::EntryId low_id = rs.add_entry(low);
  flow::FlowEntry other;
  other.switch_id = 0;
  other.priority = 10;
  other.match = ts("01xxxxxx");
  other.action = flow::Action::output(to1);
  const flow::EntryId other_id = rs.add_entry(other);

  RuleGraph graph(rs);
  ASSERT_TRUE(graph.is_active(graph.vertex_for(low_id)));

  // A higher-priority rule that fully covers `low` deactivates it; `other`
  // is untouched.
  flow::FlowEntry shadow;
  shadow.switch_id = 0;
  shadow.priority = 20;
  shadow.match = ts("001xxxxx");
  shadow.action = flow::Action::drop();
  const flow::EntryId shadow_id = rs.add_entry(shadow);
  const VertexId vs = graph.apply_entry_added(shadow_id);
  ASSERT_GE(vs, 0);
  EXPECT_EQ(graph.vertex_for(low_id), -1);
  EXPECT_NE(std::find(graph.dead_entries().begin(),
                      graph.dead_entries().end(), low_id),
            graph.dead_entries().end());
  EXPECT_TRUE(graph.is_active(graph.vertex_for(other_id)));
}

TEST(Incremental, NewEdgesAppearForNewEntry) {
  topo::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  flow::RuleSet rs(g, 8);
  flow::FlowEntry a;
  a.switch_id = 0;
  a.priority = 10;
  a.match = ts("001xxxxx");
  a.action = flow::Action::output(*rs.ports().port_to(0, 1));
  const flow::EntryId a_id = rs.add_entry(a);
  RuleGraph graph(rs);
  EXPECT_TRUE(graph.successors(graph.vertex_for(a_id)).empty());

  // Add the downstream hop: an edge a -> b must appear.
  flow::FlowEntry b;
  b.switch_id = 1;
  b.priority = 10;
  b.match = ts("0010xxxx");
  b.action = flow::Action::output(*rs.ports().port_to(1, 2));
  const flow::EntryId b_id = rs.add_entry(b);
  const VertexId vb = graph.apply_entry_added(b_id);
  ASSERT_GE(vb, 0);
  const auto& succ = graph.successors(graph.vertex_for(a_id));
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(graph.entry_of(succ[0]), b_id);
  // And MLPC now stitches the two into one tested path. The snapshot is
  // taken after the incremental update (its immutability contract).
  const AnalysisSnapshot snap(graph);
  const Cover cover = MlpcSolver().solve(snap);
  EXPECT_EQ(cover.path_count(), 1u);
  EXPECT_EQ(cover.paths[0].vertices.size(), 2u);
}

TEST(Incremental, RemovalResurrectsShadowedEntryInOldSlot) {
  topo::Graph g(2);
  g.add_edge(0, 1);
  flow::RuleSet rs(g, 8);
  flow::FlowEntry low;
  low.switch_id = 0;
  low.priority = 10;
  low.match = ts("0010xxxx");
  low.action = flow::Action::output(*rs.ports().port_to(0, 1));
  const flow::EntryId low_id = rs.add_entry(low);
  RuleGraph graph(rs);
  const VertexId original_slot = graph.vertex_for(low_id);
  ASSERT_GE(original_slot, 0);
  const hsa::HeaderSpace original_in = graph.in_space(original_slot);

  // Shadow it fully, then remove the shadow: `low` must come back to life
  // in its old slot with its original input space (slot stability is what
  // keeps monitor::Monitor's long-lived probe paths valid).
  flow::FlowEntry shadow;
  shadow.switch_id = 0;
  shadow.priority = 20;
  shadow.match = ts("001xxxxx");
  shadow.action = flow::Action::drop();
  const flow::EntryId shadow_id = rs.add_entry(shadow);
  const VertexId vs = graph.apply_entry_added(shadow_id);
  ASSERT_GE(vs, 0);
  ASSERT_EQ(graph.vertex_for(low_id), -1);

  ASSERT_TRUE(rs.remove_entry(shadow_id));
  const std::vector<VertexId> touched = graph.apply_entry_removed(shadow_id);
  EXPECT_FALSE(graph.is_active(vs));
  EXPECT_EQ(graph.vertex_for(shadow_id), -1);
  EXPECT_EQ(graph.vertex_for(low_id), original_slot);
  EXPECT_TRUE(graph.is_active(original_slot));
  EXPECT_TRUE(graph.in_space(original_slot) == original_in);
  EXPECT_TRUE(graph.dead_entries().empty());
  // Both the removed vertex and the resurrected one are reported.
  EXPECT_NE(std::find(touched.begin(), touched.end(), vs), touched.end());
  EXPECT_NE(std::find(touched.begin(), touched.end(), original_slot),
            touched.end());
}

TEST(Incremental, RemovingDeadEntryOnlyClearsDeadList) {
  topo::Graph g(2);
  g.add_edge(0, 1);
  flow::RuleSet rs(g, 8);
  flow::FlowEntry high;
  high.switch_id = 0;
  high.priority = 20;
  high.match = ts("001xxxxx");
  high.action = flow::Action::output(*rs.ports().port_to(0, 1));
  const flow::EntryId high_id = rs.add_entry(high);
  RuleGraph graph(rs);
  flow::FlowEntry dead;
  dead.switch_id = 0;
  dead.priority = 10;
  dead.match = ts("00101xxx");
  dead.action = flow::Action::drop();
  const flow::EntryId dead_id = rs.add_entry(dead);
  ASSERT_EQ(graph.apply_entry_added(dead_id), -1);
  ASSERT_EQ(graph.dead_entries().size(), 1u);

  // Removing a never-alive entry touches no vertices: nothing shadowed by
  // it could grow back.
  ASSERT_TRUE(rs.remove_entry(dead_id));
  EXPECT_TRUE(graph.apply_entry_removed(dead_id).empty());
  EXPECT_TRUE(graph.dead_entries().empty());
  EXPECT_TRUE(graph.is_active(graph.vertex_for(high_id)));
}

TEST(Incremental, RemovalMatchesFullRebuild) {
  topo::GeneratorConfig tc;
  tc.node_count = 10;
  tc.link_count = 16;
  tc.seed = 9;
  const topo::Graph topo = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 400;
  sc.seed = 48;
  flow::RuleSet rules = flow::synthesize_ruleset(topo, sc);
  RuleGraph incremental(rules);
  // Remove a spread of entries (every 7th) incrementally.
  for (std::size_t i = 0; i < rules.entry_count(); i += 7) {
    const auto id = static_cast<flow::EntryId>(i);
    ASSERT_TRUE(rules.remove_entry(id));
    incremental.apply_entry_removed(id);
  }
  // A rebuild over the tombstoned RuleSet sees neither vertices nor dead
  // entries for the removed ids.
  const RuleGraph rebuilt(rules);
  EXPECT_EQ(active_entries(incremental), active_entries(rebuilt));
  EXPECT_EQ(edge_relation(incremental), edge_relation(rebuilt));
  EXPECT_EQ(incremental.edge_count(), rebuilt.edge_count());
  std::set<flow::EntryId> dead_inc(incremental.dead_entries().begin(),
                                   incremental.dead_entries().end());
  std::set<flow::EntryId> dead_reb(rebuilt.dead_entries().begin(),
                                   rebuilt.dead_entries().end());
  EXPECT_EQ(dead_inc, dead_reb);
  for (const flow::EntryId id : active_entries(rebuilt)) {
    EXPECT_TRUE(incremental.in_space(incremental.vertex_for(id)) ==
                rebuilt.in_space(rebuilt.vertex_for(id)))
        << "entry " << id;
  }
}

TEST(Incremental, DeadOnArrivalReturnsMinusOne) {
  topo::Graph g(2);
  g.add_edge(0, 1);
  flow::RuleSet rs(g, 8);
  flow::FlowEntry high;
  high.switch_id = 0;
  high.priority = 20;
  high.match = ts("001xxxxx");
  high.action = flow::Action::output(*rs.ports().port_to(0, 1));
  rs.add_entry(high);
  RuleGraph graph(rs);
  flow::FlowEntry dead;
  dead.switch_id = 0;
  dead.priority = 10;
  dead.match = ts("00101xxx");  // fully inside the existing higher-priority
  dead.action = flow::Action::drop();
  const flow::EntryId dead_id = rs.add_entry(dead);
  EXPECT_EQ(graph.apply_entry_added(dead_id), -1);
  EXPECT_EQ(graph.vertex_for(dead_id), -1);
}

}  // namespace
}  // namespace sdnprobe::core
