// Tests for the incremental CDCL SAT solver, the clause arena, the
// header-constraint encoder, and the persistent HeaderSession API.
#include "sat/clause_allocator.h"
#include "sat/header_encoder.h"
#include "sat/session.h"
#include "sat/solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/analysis_snapshot.h"
#include "core/mlpc.h"
#include "core/probe_engine.h"
#include "core/rule_graph.h"
#include "flow/synthesizer.h"
#include "topo/generator.h"
#include "util/rng.h"

namespace sdnprobe::sat {
namespace {

TEST(SatSolver, TrivialSatAndModel) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  s.add_unit(neg(a));
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  s.add_unit(neg(a));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver s;
  s.new_var();
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, TautologyIsDropped) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
  EXPECT_EQ(s.solve(), Result::kSat);
}

// Adds pigeonhole clauses for P pigeons in H holes over fresh variables,
// optionally prefixing every clause with `guard_prefix` (e.g. {neg(g)}), so
// the instance only bites while g is assumed.
std::vector<std::vector<Var>> add_pigeonhole(Solver& s, int pigeons, int holes,
                                             const std::vector<Lit>& prefix) {
  std::vector<std::vector<Var>> x(
      static_cast<std::size_t>(pigeons),
      std::vector<Var>(static_cast<std::size_t>(holes)));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some = prefix;
    for (int h = 0; h < holes; ++h) {
      some.push_back(pos(x[static_cast<std::size_t>(p)]
                          [static_cast<std::size_t>(h)]));
    }
    s.add_clause(some);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        std::vector<Lit> pair = prefix;
        pair.push_back(neg(x[static_cast<std::size_t>(p1)]
                            [static_cast<std::size_t>(h)]));
        pair.push_back(neg(x[static_cast<std::size_t>(p2)]
                            [static_cast<std::size_t>(h)]));
        s.add_clause(pair);
      }
    }
  }
  return x;
}

TEST(SatSolver, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT requiring real search.
  Solver s;
  add_pigeonhole(s, 4, 3, {});
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SatSolver, RandomThreeSatModelsVerify) {
  // Satisfiable random 3-SAT at low clause density; every model returned
  // must actually satisfy the formula.
  util::Rng rng(12);
  for (int inst = 0; inst < 10; ++inst) {
    constexpr int N = 30;
    Solver s;
    for (int i = 0; i < N; ++i) s.new_var();
    // Plant a solution so instances are guaranteed satisfiable.
    std::vector<bool> planted(N);
    for (auto&& b : planted) b = rng.next_bool(0.5);
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < 3 * N; ++c) {
      std::vector<Lit> cl;
      bool satisfied = false;
      for (int k = 0; k < 3; ++k) {
        const Var v = static_cast<Var>(rng.next_below(N));
        const bool negated = rng.next_bool(0.5);
        cl.push_back(make_lit(v, negated));
        satisfied |= (planted[static_cast<std::size_t>(v)] != negated);
      }
      if (!satisfied) {
        // Flip one literal to agree with the planted assignment.
        const Var v = var_of(cl[0]);
        cl[0] = make_lit(v, !planted[static_cast<std::size_t>(v)]);
      }
      clauses.push_back(cl);
      s.add_clause(cl);
    }
    ASSERT_EQ(s.solve(), Result::kSat);
    for (const auto& cl : clauses) {
      bool sat = false;
      for (const Lit l : cl) {
        sat |= (s.model_value(var_of(l)) != is_negated(l));
      }
      EXPECT_TRUE(sat) << "model violates a clause (instance " << inst << ")";
    }
  }
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  // Hard pigeonhole with a tiny budget must give up, not hang. The budget
  // now lives in SolverConfig instead of a loose solve() parameter.
  SolverConfig cfg;
  cfg.conflict_budget = 5;
  Solver s(cfg);
  add_pigeonhole(s, 8, 7, {});
  EXPECT_EQ(s.solve(), Result::kUnknown);
  // Raising the budget through config() unsticks the same solver.
  s.config().conflict_budget = -1;
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, AssumptionsActAsRetractableDecisions) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(neg(a), pos(b));  // a -> b
  ASSERT_EQ(s.solve({pos(a)}), Result::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  // The assumption retracts: nothing forces a anymore.
  ASSERT_EQ(s.solve({neg(a), neg(b)}), Result::kSat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_FALSE(s.model_value(b));
}

TEST(SatSolver, FailedAssumptionCore) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_binary(neg(a), neg(b));  // a and b conflict
  ASSERT_EQ(s.solve({pos(a), pos(b), pos(c)}), Result::kUnsat);
  const auto& core = s.failed_assumptions();
  ASSERT_FALSE(core.empty());
  // Every core literal is one of the assumptions...
  for (const Lit l : core) {
    EXPECT_TRUE(l == pos(a) || l == pos(b) || l == pos(c));
  }
  // ...and the core pins the genuinely conflicting pair, not the bystander.
  EXPECT_NE(std::find(core.begin(), core.end(), pos(a)), core.end());
  EXPECT_NE(std::find(core.begin(), core.end(), pos(b)), core.end());
  EXPECT_EQ(std::find(core.begin(), core.end(), pos(c)), core.end());
  // An unconditional contradiction yields an empty core.
  s.add_unit(pos(a));
  s.add_unit(neg(a));
  ASSERT_EQ(s.solve({pos(c)}), Result::kUnsat);
  EXPECT_TRUE(s.failed_assumptions().empty());
}

TEST(SatSolver, ActivationGuardRetractsConstraints) {
  // The HeaderSession encoding pattern: a guard g arms (x ∧ ¬x) only while
  // assumed, and the solver stays usable after the guarded contradiction.
  Solver s;
  const Var g = s.new_var(/*frozen=*/true);
  const Var x = s.new_var(/*frozen=*/true);
  s.add_binary(neg(g), pos(x));
  s.add_binary(neg(g), neg(x));
  ASSERT_EQ(s.solve({pos(g)}), Result::kUnsat);
  ASSERT_EQ(s.failed_assumptions().size(), 1u);
  EXPECT_EQ(s.failed_assumptions()[0], pos(g));
  // Retracted: the formula itself is satisfiable, repeatedly.
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.model_value(g));
  ASSERT_EQ(s.solve({pos(g)}), Result::kUnsat);
  ASSERT_EQ(s.solve({neg(g), pos(x)}), Result::kSat);
  EXPECT_TRUE(s.model_value(x));
}

TEST(SatSolver, LearnedClausesPersistAcrossSolves) {
  // A guarded pigeonhole solved twice: the second solve reuses the first
  // solve's learned clauses and must spend strictly fewer conflicts.
  Solver s;
  const Var g = s.new_var(/*frozen=*/true);
  add_pigeonhole(s, 6, 5, {neg(g)});  // armed only under the assumption g
  ASSERT_EQ(s.solve({pos(g)}), Result::kUnsat);
  const std::uint64_t first = s.stats().conflicts;
  ASSERT_GT(first, 0u);
  ASSERT_EQ(s.solve({pos(g)}), Result::kUnsat);
  const std::uint64_t second = s.stats().conflicts - first;
  EXPECT_LT(second, first);
  EXPECT_GT(s.stats().learned_clauses, 0u);
  // The solver itself is still consistent (guard retracts).
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, ReductionAndGarbageCollectionKeepAnswersRight) {
  // Small reduce/GC thresholds force clause-DB reduction and arena
  // collection during one guarded UNSAT proof; the solver must survive and
  // still answer correctly afterwards.
  SolverConfig cfg;
  cfg.reduce_base = 50;
  cfg.gc_wasted_fraction = 0.05;
  Solver s(cfg);
  const Var g = s.new_var(/*frozen=*/true);
  add_pigeonhole(s, 7, 6, {neg(g)});
  ASSERT_EQ(s.solve({pos(g)}), Result::kUnsat);
  EXPECT_GT(s.stats().reduce_runs, 0u);
  EXPECT_GT(s.stats().learned_removed, 0u);
  EXPECT_GT(s.stats().gc_runs, 0u);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.solve({pos(g)}), Result::kUnsat);
}

TEST(SatSolver, InprocessingSubsumesAndEliminates) {
  // A positive implication chain plus redundant supersets: subsumption must
  // strip the supersets, bounded elimination must clear the (pure-positive)
  // chain variables, and model extension must still satisfy every original
  // clause. A frozen variable riding along must survive untouched.
  constexpr int N = 80;
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < N; ++i) v.push_back(s.new_var());
  const Var f = s.new_var(/*frozen=*/true);
  std::vector<std::vector<Lit>> original;
  for (int i = 0; i + 1 < N; ++i) {
    original.push_back({pos(v[static_cast<std::size_t>(i)]),
                        pos(v[static_cast<std::size_t>(i + 1)])});
  }
  for (int i = 0; i + 2 < N; ++i) {
    original.push_back({pos(v[static_cast<std::size_t>(i)]),
                        pos(v[static_cast<std::size_t>(i + 1)]),
                        pos(v[static_cast<std::size_t>(i + 2)])});
  }
  original.push_back({pos(f), pos(v[0])});
  for (const auto& cl : original) s.add_clause(cl);

  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_GT(s.stats().subsumed, 0u);
  EXPECT_GT(s.stats().eliminated_vars, 0u);
  EXPECT_FALSE(s.is_eliminated(f));
  for (const auto& cl : original) {
    bool sat = false;
    for (const Lit l : cl) sat |= (s.model_value(var_of(l)) != is_negated(l));
    EXPECT_TRUE(sat) << "extended model violates an original clause";
  }
}

TEST(ClauseAllocator, CopyingGcForwardsAndPreserves) {
  ClauseAllocator ca;
  const std::vector<Lit> c1 = {0, 2, 4};
  const std::vector<Lit> c2 = {1, 3};
  const std::vector<Lit> c3 = {5, 7, 9, 11};
  const ClauseRef r1 = ca.alloc(c1, /*learned=*/false);
  const ClauseRef r2 = ca.alloc(c2, /*learned=*/true);
  ca.deref(r2).set_activity(3.5f);
  const ClauseRef r3 = ca.alloc(c3, /*learned=*/false);
  ca.free_clause(r1);
  EXPECT_EQ(ca.wasted_words(),
            static_cast<std::size_t>(ClauseAllocator::clause_words(3, false)));

  ClauseAllocator to;
  to.reserve_for_copy(ca);
  ClauseRef n2 = r2;
  ca.reloc(n2, to);
  ClauseRef n2_again = r2;
  ca.reloc(n2_again, to);
  EXPECT_EQ(n2, n2_again) << "second visit must chase the forwarding ref";
  ClauseRef n3 = r3;
  ca.reloc(n3, to);

  const Clause d2 = to.deref(n2);
  ASSERT_EQ(d2.size(), 2);
  EXPECT_TRUE(d2.learned());
  EXPECT_FLOAT_EQ(d2.activity(), 3.5f);
  for (int i = 0; i < d2.size(); ++i) {
    EXPECT_EQ(d2[i], c2[static_cast<std::size_t>(i)]);
  }
  const Clause d3 = to.deref(n3);
  ASSERT_EQ(d3.size(), 4);
  EXPECT_FALSE(d3.learned());
  for (int i = 0; i < d3.size(); ++i) {
    EXPECT_EQ(d3[i], c3[static_cast<std::size_t>(i)]);
  }
  // The dead clause was never copied: the target arena is dense.
  EXPECT_EQ(to.size_words(),
            static_cast<std::size_t>(ClauseAllocator::clause_words(2, true) +
                                     ClauseAllocator::clause_words(4, false)));
  EXPECT_EQ(to.wasted_words(), 0u);
}

TEST(HeaderEncoder, FindsHeaderInDifference) {
  // The §V-A use case: a header in match − overlap.
  const auto match = *hsa::TernaryString::parse("001xxxxx");
  const auto overlap = *hsa::TernaryString::parse("00100xxx");
  const hsa::HeaderSpace in = hsa::HeaderSpace(match).subtract(overlap);
  const auto h = solve_header_in(in);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(match.covers(*h));
  EXPECT_FALSE(overlap.covers(*h));
}

TEST(HeaderEncoder, UnsatWhenSpaceEmpty) {
  EXPECT_FALSE(solve_header_in(hsa::HeaderSpace::empty(8)).has_value());
}

TEST(HeaderEncoder, UniquenessExhaustsTinySpace) {
  // A 2-header space yields exactly two distinct headers, then UNSAT.
  const auto cube = *hsa::TernaryString::parse("0110101x");
  const hsa::HeaderSpace space{hsa::HeaderSpace(cube)};
  std::vector<hsa::TernaryString> used;
  for (int i = 0; i < 2; ++i) {
    const auto h = solve_header_in(space, used);
    ASSERT_TRUE(h.has_value());
    for (const auto& u : used) EXPECT_FALSE(u == *h);
    used.push_back(*h);
  }
  EXPECT_FALSE(solve_header_in(space, used).has_value());
}

TEST(HeaderEncoder, DeepOverlapChain) {
  // 65-deep nested prefixes (the campus §VIII-A regime): the residual space
  // of the shallowest rule is match − next-deeper prefix; SAT must find a
  // witness quickly.
  hsa::HeaderSpace space = hsa::HeaderSpace(
      *hsa::TernaryString::parse(std::string(96, 'x')));
  hsa::TernaryString pinned = hsa::TernaryString::wildcard(96);
  for (int depth = 0; depth < 65; ++depth) {
    pinned.set(depth, hsa::Trit::kOne);
    space = space.subtract(pinned);
  }
  const auto h = solve_header_in(space);
  ASSERT_TRUE(h.has_value());
  // The witness must break the all-ones prefix somewhere in the first 65.
  bool broken = false;
  for (int k = 0; k < 65; ++k) broken |= (h->get(k) == hsa::Trit::kZero);
  EXPECT_TRUE(broken);
}

// Brute-force oracle: the lexicographically smallest member of
// space − forbidden at small widths (H[0] is the most significant bit, so
// ascending integer order is ascending lex order).
std::optional<hsa::TernaryString> oracle_lex_min(
    const hsa::HeaderSpace& space,
    const std::vector<hsa::TernaryString>& forbidden) {
  const int w = space.width();
  for (std::uint64_t val = 0; val < (1ull << w); ++val) {
    const auto h = hsa::TernaryString::exact(val, w);
    if (!space.contains(h)) continue;
    bool banned = false;
    for (const auto& u : forbidden) banned |= (u == h);
    if (!banned) return h;
  }
  return std::nullopt;
}

hsa::TernaryString random_cube(util::Rng& rng, int width, double wild_p) {
  hsa::TernaryString t(width);
  for (int k = 0; k < width; ++k) {
    if (rng.next_bool(wild_p)) continue;  // keep wildcard
    t.set(k, rng.next_bool(0.5) ? hsa::Trit::kOne : hsa::Trit::kZero);
  }
  return t;
}

TEST(HeaderSession, MatchesOracleAndFreshSessionOnRandomQueries) {
  // The canonical-answer contract: a long-lived session (arbitrary learned
  // state) and a throwaway session must both return the brute-force lex-min
  // header for every query.
  constexpr int W = 8;
  util::Rng rng(77);
  HeaderSession persistent(W);
  int nonempty = 0;
  for (int q = 0; q < 40; ++q) {
    hsa::HeaderSpace space(W);
    const int cubes = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < cubes; ++i) {
      space = space.union_with(hsa::HeaderSpace(random_cube(rng, W, 0.6)));
    }
    if (rng.next_bool(0.5)) space = space.subtract(random_cube(rng, W, 0.5));

    std::vector<hsa::TernaryString> forbidden;
    for (int i = 0; i < 2 && rng.next_bool(0.6); ++i) {
      const auto member = oracle_lex_min(space, forbidden);
      if (member.has_value()) forbidden.push_back(*member);
    }

    const auto expected = oracle_lex_min(space, forbidden);
    const auto from_persistent = persistent.find_header(space, forbidden);
    HeaderSession fresh(W);
    const auto from_fresh = fresh.find_header(space, forbidden);

    ASSERT_EQ(expected.has_value(), from_persistent.has_value()) << "query " << q;
    ASSERT_EQ(expected.has_value(), from_fresh.has_value()) << "query " << q;
    if (expected.has_value()) {
      ++nonempty;
      EXPECT_TRUE(*expected == *from_persistent)
          << "query " << q << ": session " << from_persistent->to_string()
          << " vs oracle " << expected->to_string();
      EXPECT_TRUE(*expected == *from_fresh) << "query " << q;
    }
  }
  EXPECT_GT(nonempty, 5) << "workload degenerate: almost every space empty";
  EXPECT_EQ(persistent.queries(), 40u);
}

TEST(HeaderSession, RepeatedQueriesReuseGuardsAndStayCanonical) {
  // Re-asking the same query must hit the guard caches (no new variables)
  // and return the identical header.
  const auto match = *hsa::TernaryString::parse("01xxxxxx");
  const hsa::HeaderSpace space =
      hsa::HeaderSpace(match).subtract(*hsa::TernaryString::parse("010xxxxx"));
  HeaderSession session(8);
  const auto first = session.find_header(space);
  ASSERT_TRUE(first.has_value());
  const int vars_after_first = session.solver().num_vars();
  for (int i = 0; i < 5; ++i) {
    const auto again = session.find_header(space);
    ASSERT_TRUE(again.has_value());
    EXPECT_TRUE(*again == *first);
  }
  EXPECT_EQ(session.solver().num_vars(), vars_after_first)
      << "cached space guard should be reused, not re-encoded";
  EXPECT_EQ(session.queries(), 6u);
}

TEST(SessionDeterminism, ProbeReportsIdenticalAcrossThreadCounts) {
  // sample_attempts = 0 forces every probe header through the SAT-session
  // fallback; reports must be bit-identical at 1/2/8 threads.
  topo::GeneratorConfig tc;
  tc.node_count = 10;
  tc.link_count = 16;
  tc.seed = 3;
  const topo::Graph g = topo::make_rocketfuel_like(tc);
  flow::SynthesizerConfig sc;
  sc.target_entry_count = 200;
  sc.set_field_fraction = 0.2;
  sc.seed = 4;
  const flow::RuleSet rs = flow::synthesize_ruleset(g, sc);
  core::RuleGraph graph(rs);
  core::AnalysisSnapshot snap(graph);
  const core::Cover cover = core::MlpcSolver().solve(snap);

  std::vector<std::string> reference;
  for (const int threads : {1, 2, 8}) {
    core::ProbeEngineConfig cfg;
    cfg.common.threads = threads;
    cfg.sample_attempts = 0;
    core::ProbeEngine engine(snap, cfg);
    util::Rng rng(11);
    const auto probes = engine.make_probes(cover, rng);
    ASSERT_FALSE(probes.empty());
    EXPECT_EQ(engine.stats().headers_by_sampling, 0u);
    EXPECT_EQ(engine.stats().headers_by_sat,
              static_cast<std::uint64_t>(probes.size()));
    std::vector<std::string> rendered;
    rendered.reserve(probes.size());
    for (const auto& p : probes) {
      std::string row = p.header.to_string();
      row += '|';
      row += p.expected_return.to_string();
      row += '|';
      row += std::to_string(p.inject_switch);
      row += '|';
      for (const auto v : p.path) row += std::to_string(v) + ",";
      rendered.push_back(std::move(row));
    }
    if (reference.empty()) {
      reference = std::move(rendered);
    } else {
      EXPECT_EQ(rendered, reference)
          << "probe report diverged at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace sdnprobe::sat
