// Tests for the CDCL SAT solver and the header-constraint encoder.
#include "sat/header_encoder.h"
#include "sat/solver.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sdnprobe::sat {
namespace {

TEST(SatSolver, TrivialSatAndModel) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  s.add_unit(neg(a));
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  s.add_unit(neg(a));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver s;
  s.new_var();
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, TautologyIsDropped) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic small UNSAT requiring real search.
  constexpr int P = 4, H = 3;
  Solver s;
  Var x[P][H];
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> some;
    for (int h = 0; h < H; ++h) some.push_back(pos(x[p][h]));
    s.add_clause(some);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_binary(neg(x[p1][h]), neg(x[p2][h]));
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SatSolver, RandomThreeSatModelsVerify) {
  // Satisfiable random 3-SAT at low clause density; every model returned
  // must actually satisfy the formula.
  util::Rng rng(12);
  for (int inst = 0; inst < 10; ++inst) {
    constexpr int N = 30;
    Solver s;
    for (int i = 0; i < N; ++i) s.new_var();
    // Plant a solution so instances are guaranteed satisfiable.
    std::vector<bool> planted(N);
    for (auto&& b : planted) b = rng.next_bool(0.5);
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < 3 * N; ++c) {
      std::vector<Lit> cl;
      bool satisfied = false;
      for (int k = 0; k < 3; ++k) {
        const Var v = static_cast<Var>(rng.next_below(N));
        const bool negated = rng.next_bool(0.5);
        cl.push_back(make_lit(v, negated));
        satisfied |= (planted[static_cast<std::size_t>(v)] != negated);
      }
      if (!satisfied) {
        // Flip one literal to agree with the planted assignment.
        const Var v = var_of(cl[0]);
        cl[0] = make_lit(v, !planted[static_cast<std::size_t>(v)]);
      }
      clauses.push_back(cl);
      s.add_clause(cl);
    }
    ASSERT_EQ(s.solve(), Result::kSat);
    for (const auto& cl : clauses) {
      bool sat = false;
      for (const Lit l : cl) {
        sat |= (s.model_value(var_of(l)) != is_negated(l));
      }
      EXPECT_TRUE(sat) << "model violates a clause (instance " << inst << ")";
    }
  }
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  // Hard pigeonhole with a tiny budget must give up, not hang.
  constexpr int P = 8, H = 7;
  Solver s;
  std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> some;
    for (int h = 0; h < H; ++h) some.push_back(pos(x[p][h]));
    s.add_clause(some);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_binary(neg(x[p1][h]), neg(x[p2][h]));
      }
    }
  }
  EXPECT_EQ(s.solve(/*conflict_budget=*/5), Result::kUnknown);
}

TEST(HeaderEncoder, FindsHeaderInDifference) {
  // The §V-A use case: a header in match − overlap.
  const auto match = *hsa::TernaryString::parse("001xxxxx");
  const auto overlap = *hsa::TernaryString::parse("00100xxx");
  const hsa::HeaderSpace in = hsa::HeaderSpace(match).subtract(overlap);
  const auto h = solve_header_in(in);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(match.covers(*h));
  EXPECT_FALSE(overlap.covers(*h));
}

TEST(HeaderEncoder, UnsatWhenSpaceEmpty) {
  EXPECT_FALSE(solve_header_in(hsa::HeaderSpace::empty(8)).has_value());
}

TEST(HeaderEncoder, UniquenessExhaustsTinySpace) {
  // A 2-header space yields exactly two distinct headers, then UNSAT.
  const auto cube = *hsa::TernaryString::parse("0110101x");
  const hsa::HeaderSpace space{hsa::HeaderSpace(cube)};
  std::vector<hsa::TernaryString> used;
  for (int i = 0; i < 2; ++i) {
    const auto h = solve_header_in(space, used);
    ASSERT_TRUE(h.has_value());
    for (const auto& u : used) EXPECT_FALSE(u == *h);
    used.push_back(*h);
  }
  EXPECT_FALSE(solve_header_in(space, used).has_value());
}

TEST(HeaderEncoder, DeepOverlapChain) {
  // 65-deep nested prefixes (the campus §VIII-A regime): the residual space
  // of the shallowest rule is match − next-deeper prefix; SAT must find a
  // witness quickly.
  hsa::HeaderSpace space = hsa::HeaderSpace(
      *hsa::TernaryString::parse(std::string(96, 'x')));
  hsa::TernaryString pinned = hsa::TernaryString::wildcard(96);
  for (int depth = 0; depth < 65; ++depth) {
    pinned.set(depth, hsa::Trit::kOne);
    space = space.subtract(pinned);
  }
  const auto h = solve_header_in(space);
  ASSERT_TRUE(h.has_value());
  // The witness must break the all-ones prefix somewhere in the first 65.
  bool broken = false;
  for (int k = 0; k < 65; ++k) broken |= (h->get(k) == hsa::Trit::kZero);
  EXPECT_TRUE(broken);
}

}  // namespace
}  // namespace sdnprobe::sat
