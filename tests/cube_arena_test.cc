// Arena/view equivalence: the hsa::CubeArena batch kernels must agree with
// the scalar TernaryString operations cube-for-cube — not just set-equal.
// The arena is the engine under HeaderSpace and FlowTable::input_space, and
// input_space feeds volume-weighted probe-header sampling, so a list-level
// divergence would silently change probe headers. Randomized cross-checks
// here replicate the original scalar algorithms (add_cube dedup, simplify
// subsumption, cube_difference splitting) as in-test references.
#include "hsa/cube_arena.h"

#include <gtest/gtest.h>

#include <vector>

#include "flow/table.h"
#include "hsa/header_space.h"
#include "util/rng.h"

namespace sdnprobe::hsa {
namespace {

TernaryString random_cube(util::Rng& rng, int width) {
  TernaryString t = TernaryString::wildcard(width);
  for (int k = 0; k < width; ++k) {
    const int r = static_cast<int>(rng.next_below(3));
    t.set(k, r == 0   ? Trit::kZero
            : r == 1 ? Trit::kOne
                     : Trit::kWild);
  }
  return t;
}

std::vector<TernaryString> random_cubes(util::Rng& rng, int width,
                                        std::size_t n) {
  std::vector<TernaryString> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(random_cube(rng, width));
  return out;
}

// --- Scalar references: the original vector-of-TernaryString algorithms. ---

// HeaderSpace::add_cube: skip when an existing cube covers the new one.
void ref_add_cube(std::vector<TernaryString>& cubes, const TernaryString& c) {
  for (const auto& existing : cubes) {
    if (existing.covers(c)) return;
  }
  cubes.push_back(c);
}

// HeaderSpace::simplify: drop cube i when another cube j covers it, keeping
// the earlier of equal cubes.
std::vector<TernaryString> ref_simplify(
    const std::vector<TernaryString>& cubes) {
  std::vector<TernaryString> kept;
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    bool subsumed = false;
    for (std::size_t j = 0; j < cubes.size(); ++j) {
      if (i == j) continue;
      if (cubes[j].covers(cubes[i]) &&
          !(cubes[i].covers(cubes[j]) && j > i)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(cubes[i]);
  }
  return kept;
}

// Original HeaderSpace::subtract(cube) over an explicit cube list.
std::vector<TernaryString> ref_subtract(const std::vector<TernaryString>& from,
                                        const TernaryString& cube) {
  std::vector<TernaryString> r;
  for (const auto& a : from) {
    for (const auto& piece : cube_difference(a, cube)) ref_add_cube(r, piece);
  }
  return ref_simplify(r);
}

std::vector<TernaryString> arena_cubes(const CubeArena& a) {
  std::vector<TernaryString> out;
  a.append_to(out);
  return out;
}

constexpr int kWidths[] = {0, 1, 12, 63, 64, 65, 100, 128};

TEST(CubeArena, PushViewRoundTrip) {
  util::Rng rng(1);
  for (const int w : kWidths) {
    CubeArena arena(w);
    const auto cubes = random_cubes(rng, w, 33);
    for (const auto& c : cubes) arena.push(c);
    ASSERT_EQ(arena.size(), cubes.size());
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      EXPECT_EQ(arena.view(i), cubes[i]) << "width " << w << " cube " << i;
    }
    // All-wildcard and reset round trips.
    arena.reset(w);
    arena.push(TernaryString::wildcard(w));
    EXPECT_EQ(arena.view(0), TernaryString::wildcard(w));
  }
}

TEST(CubeArena, CoversAnyAgreesWithScalar) {
  util::Rng rng(2);
  for (const int w : kWidths) {
    const auto cubes = random_cubes(rng, w, 24);
    CubeArena arena(w);
    for (const auto& c : cubes) arena.push(c);
    for (int it = 0; it < 64; ++it) {
      const TernaryString probe =
          it == 0 ? TernaryString::wildcard(w) : random_cube(rng, w);
      bool scalar = false;
      for (const auto& c : cubes) scalar |= c.covers(probe);
      EXPECT_EQ(covers_any(arena, 0, arena.size(), probe), scalar)
          << "width " << w << " probe " << probe.to_string();
    }
  }
}

TEST(CubeArena, IntersectsAnyAgreesWithScalar) {
  util::Rng rng(3);
  for (const int w : kWidths) {
    const auto cubes = random_cubes(rng, w, 24);
    CubeArena arena(w);
    for (const auto& c : cubes) arena.push(c);
    for (int it = 0; it < 64; ++it) {
      const TernaryString probe = random_cube(rng, w);
      bool scalar = false;
      for (const auto& c : cubes) scalar |= c.intersects(probe);
      EXPECT_EQ(intersects_any(arena, 0, arena.size(), probe), scalar);
    }
  }
}

TEST(CubeArena, IntersectAllAgreesWithScalar) {
  util::Rng rng(4);
  for (const int w : kWidths) {
    const auto cubes = random_cubes(rng, w, 24);
    CubeArena arena(w);
    for (const auto& c : cubes) arena.push(c);
    for (int it = 0; it < 32; ++it) {
      const TernaryString probe =
          it == 0 ? TernaryString::wildcard(w) : random_cube(rng, w);
      // Without dedup: plain pairwise intersection list.
      std::vector<TernaryString> plain;
      for (const auto& c : cubes) {
        if (auto x = c.intersect(probe)) plain.push_back(*x);
      }
      CubeArena dst(w);
      intersect_all(arena, 0, arena.size(), probe, dst, /*dedup=*/false);
      EXPECT_EQ(arena_cubes(dst), plain);
      // With dedup: add_cube semantics.
      std::vector<TernaryString> deduped;
      for (const auto& c : plain) ref_add_cube(deduped, c);
      dst.clear();
      intersect_all(arena, 0, arena.size(), probe, dst, /*dedup=*/true);
      EXPECT_EQ(arena_cubes(dst), deduped);
    }
  }
}

TEST(CubeArena, SubtractIntoAgreesWithCubeDifference) {
  util::Rng rng(5);
  for (const int w : kWidths) {
    const auto cubes = random_cubes(rng, w, 16);
    CubeArena arena(w);
    for (const auto& c : cubes) arena.push(c);
    for (int it = 0; it < 32; ++it) {
      const TernaryString b =
          it == 0 ? TernaryString::wildcard(w) : random_cube(rng, w);
      // Without dedup: concatenated cube_difference piece lists.
      std::vector<TernaryString> plain;
      for (const auto& a : cubes) {
        for (const auto& piece : cube_difference(a, b)) plain.push_back(piece);
      }
      CubeArena dst(w);
      subtract_into(arena, 0, arena.size(), b, dst, /*dedup=*/false);
      EXPECT_EQ(arena_cubes(dst), plain);
      // With dedup: each piece through add_cube.
      std::vector<TernaryString> deduped;
      for (const auto& c : plain) ref_add_cube(deduped, c);
      dst.clear();
      subtract_into(arena, 0, arena.size(), b, dst, /*dedup=*/true);
      EXPECT_EQ(arena_cubes(dst), deduped);
    }
  }
}

TEST(CubeArena, SimplifyAgreesWithScalarSimplify) {
  util::Rng rng(6);
  for (const int w : kWidths) {
    for (int it = 0; it < 24; ++it) {
      // Draw from a small pool so duplicates and covers are common.
      const auto pool = random_cubes(rng, w, 6);
      std::vector<TernaryString> cubes;
      for (int i = 0; i < 18; ++i) {
        cubes.push_back(pool[rng.pick_index(pool.size())]);
      }
      CubeArena arena(w);
      for (const auto& c : cubes) arena.push(c);
      simplify_cubes(arena);
      EXPECT_EQ(arena_cubes(arena), ref_simplify(cubes))
          << "width " << w << " iteration " << it;
    }
  }
}

// assume_deduped is only valid on dedup=true kernel output (no earlier cube
// covers a later one); on such input it must match the generic verdict
// exactly. Exercise it on real subtract_into output across widths.
TEST(CubeArena, SimplifyDedupedAgreesOnKernelOutput) {
  util::Rng rng(9);
  for (const int w : kWidths) {
    if (w == 0) continue;  // no cubes to split
    for (int it = 0; it < 24; ++it) {
      const auto cubes = random_cubes(rng, w, 8);
      CubeArena src(w);
      for (const auto& c : cubes) src.push(c);
      const TernaryString b = random_cube(rng, w);
      CubeArena dst(w);
      subtract_into(src, 0, src.size(), b, dst, /*dedup=*/true);
      const std::vector<TernaryString> produced = arena_cubes(dst);
      simplify_cubes(dst, 0, /*assume_deduped=*/true);
      EXPECT_EQ(arena_cubes(dst), ref_simplify(produced))
          << "width " << w << " iteration " << it;
    }
  }
}

// The arena-backed HeaderSpace::subtract(cube) must produce the exact cube
// list of the original scalar implementation (not merely the same set).
TEST(CubeArena, HeaderSpaceSubtractMatchesScalarListExactly) {
  util::Rng rng(7);
  for (const int w : {8, 12, 32}) {
    for (int it = 0; it < 48; ++it) {
      std::vector<TernaryString> cubes;
      HeaderSpace hs(w);
      for (int i = 0; i < 3; ++i) {
        const TernaryString c = random_cube(rng, w);
        hs = hs.union_with(HeaderSpace(c));
      }
      cubes = hs.cubes();
      const TernaryString b = random_cube(rng, w);
      EXPECT_EQ(hs.subtract(b).cubes(), ref_subtract(cubes, b));
    }
  }
}

// FlowTable::input_space runs the whole prefix-subtraction chain in arena
// scratch; its result must be cube-for-cube what the scalar fold produced.
TEST(CubeArena, InputSpaceMatchesScalarFoldExactly) {
  util::Rng rng(8);
  const int w = 16;
  for (int it = 0; it < 16; ++it) {
    flow::FlowTable table;
    const int n = 24;
    for (int i = 0; i < n; ++i) {
      flow::FlowEntry e;
      e.id = i;
      e.priority = static_cast<int>(rng.next_below(4));
      // Prefix-style matches create deep overlap chains.
      TernaryString m = TernaryString::wildcard(w);
      const int plen = static_cast<int>(rng.next_below(9));
      for (int k = 0; k < plen; ++k) {
        m.set(k, rng.next_bool(0.5) ? Trit::kOne : Trit::kZero);
      }
      e.match = m;
      e.set_field = TernaryString::wildcard(w);
      table.insert(e);
    }
    for (const auto& target : table.entries()) {
      // Scalar reference: the original fold of subtract() over the prefix.
      std::vector<TernaryString> in{target.match};
      for (const auto& q : table.entries()) {
        if (&q == &target) break;
        if (!q.match.intersects(target.match)) continue;
        in = ref_subtract(in, q.match);
        if (in.empty()) break;
      }
      EXPECT_EQ(table.input_space(target.id).cubes(), in)
          << "entry " << target.id << " iteration " << it;
    }
  }
}

// The whole-space fold kernel (analysis::Verifier's blackhole residuals)
// must reproduce HeaderSpace::subtract(HeaderSpace) cube-for-cube with
// dedup, and be set-equivalent without.
TEST(CubeArena, SubtractSpaceIntoMatchesHeaderSpaceSubtract) {
  util::Rng rng(9);
  for (const int w : {8, 16, 64, 100}) {
    for (int it = 0; it < 32; ++it) {
      HeaderSpace a(w);
      HeaderSpace b(w);
      for (int i = 0; i < 4; ++i) {
        a = a.union_with(HeaderSpace(random_cube(rng, w)));
        b = b.union_with(HeaderSpace(random_cube(rng, w)));
      }
      CubeArena src(w), sub(w), dst, tmp;
      for (const auto& c : a.cubes()) src.push(c);
      for (const auto& c : b.cubes()) sub.push(c);
      subtract_space_into(src, sub, dst, tmp, /*dedup=*/true);
      EXPECT_EQ(arena_cubes(dst), a.subtract(b).cubes())
          << "width " << w << " iteration " << it;

      // Empty-subtrahend fast path copies the source verbatim.
      CubeArena none(w), dst2, tmp2;
      subtract_space_into(src, none, dst2, tmp2, /*dedup=*/true);
      EXPECT_EQ(arena_cubes(dst2), a.cubes());
    }
  }
}

}  // namespace
}  // namespace sdnprobe::hsa
