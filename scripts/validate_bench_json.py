#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts against the sdnprobe.bench.v1 schema.

Usage:  validate_bench_json.py FILE [FILE...]

Mirrors telemetry::validate_bench_artifact (src/telemetry/artifact.cc) so CI
can check artifacts without linking the C++ validator. Exits non-zero and
prints one line per problem when any file fails; prints "OK <file>" per
passing file otherwise. Stdlib only.
"""
import json
import sys


def validate(doc):
    """Returns a list of problem strings; empty means the document is valid."""
    problems = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != "sdnprobe.bench.v1":
        problems.append('"schema" is not "sdnprobe.bench.v1"')
    for key in ("bench", "reproduces"):
        v = doc.get(key)
        if not isinstance(v, str) or not v:
            problems.append(f'"{key}" is not a non-empty string')
    if not isinstance(doc.get("full"), bool):
        problems.append('"full" is not a boolean')
    params = doc.get("params")
    if not isinstance(params, dict):
        problems.append('missing or non-object "params"')
    rows = doc.get("rows")
    if not isinstance(rows, list):
        problems.append('missing or non-array "rows"')
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append('missing or non-object "summary"')
    if isinstance(rows, list) and isinstance(summary, dict):
        if not rows and not summary:
            problems.append('both "rows" and "summary" are empty')
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or not row:
                problems.append(f"rows[{i}] is not a non-empty object")
    # Optional attached metrics export must carry its own schema tag.
    metrics = doc.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            problems.append('"metrics" is not an object')
        elif metrics.get("schema") != "sdnprobe.metrics.v1":
            problems.append('"metrics.schema" is not "sdnprobe.metrics.v1"')
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: {e}")
            failed = True
            continue
        problems = validate(doc)
        if problems:
            for p in problems:
                print(f"FAIL {path}: {p}")
            failed = True
        else:
            print(f"OK {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
